"""Wire-codec property tests: every message kind crosses the live wire
byte-identically, and the byte format itself is pinned by a golden
fixture (``tests/data/wire_golden.json``).

The sample builder is annotation-driven: it constructs one instance of
every class in ``Message.registry()`` from a fixed value per field type,
so a *new* message kind is covered automatically the moment it is
registered — and the golden test fails loudly if its wire shape was
never pinned (regenerate with
``python tests/test_live_codec.py --regen``).
"""

import json
import pathlib
import sys
from dataclasses import fields

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.core.protocol import PrefPayload  # noqa: E402
from repro.live.codec import (  # noqa: E402
    CodecError,
    decode_envelope,
    decode_message,
    encode_envelope,
    encode_message,
    message_from_obj,
    message_to_obj,
)
from repro.net.message import Message  # noqa: E402
from repro.types import NodeId, ProxyId, ProxyRef, RequestId  # noqa: E402

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "wire_golden.json"

_REF = ProxyRef(mss=NodeId("mss:s1"), proxy_id=ProxyId("px7"))

#: One fixed sample value per field annotation seen in the registry.
_SAMPLES = {
    "NodeId": NodeId("mh:h0"),
    "RequestId": RequestId("h0-r3"),
    "ProxyId": ProxyId("px7"),
    "ProxyRef": _REF,
    "Optional[ProxyRef]": _REF,
    "PrefPayload": PrefPayload(ref=_REF, rkpr=2),
    "int": 7,
    "bool": True,
    "float": 0.75,
    "str": "weather",
    "Any": {"n": 3, "items": [1, 2.5, "x", None, True],
            "pos": {"lat": 1.0, "lon": -2.0}},
    "tuple": (NodeId("mss:s0"), NodeId("mss:s2")),
    "Tuple[Tuple[int, int], ...]": ((1, 2), (4, 4)),
    "Dict[str, Any]": {"level": 0.7, "region": "r1"},
    "Optional[Dict[str, Any]]": {"level": 0.7, "region": "r1"},
}


def sample_message(cls):
    """One deterministic instance of a registered message class."""
    kwargs = {}
    for f in fields(cls):
        if f.name == "msg_id":
            kwargs[f.name] = 41
        elif f.name in ("src", "dst"):
            kwargs[f.name] = NodeId(f"mss:{f.name}")
        else:
            annotation = f.type if isinstance(f.type, str) else f.type.__name__
            if annotation not in _SAMPLES:
                raise AssertionError(
                    f"{cls.__name__}.{f.name}: no sample for field type "
                    f"{annotation!r} — extend _SAMPLES so the codec tests "
                    f"keep covering every registered kind")
            kwargs[f.name] = _SAMPLES[annotation]
    return cls(**kwargs)


def all_kinds():
    """Every protocol kind — excluding ad-hoc Message subclasses other
    test modules register at import time (the live wire only ever
    carries kinds defined inside the ``repro`` package)."""
    return sorted(kind for kind, cls in Message.registry().items()
                  if cls.__module__.startswith("repro."))


@pytest.mark.parametrize("kind", all_kinds())
def test_round_trip_byte_identical(kind):
    """encode → decode → re-encode is the identity on bytes."""
    original = sample_message(Message.registry()[kind])
    data = encode_message(original)
    decoded = decode_message(data)
    assert type(decoded) is type(original)
    assert message_to_obj(decoded) == message_to_obj(original)
    assert encode_message(decoded) == data


@pytest.mark.parametrize("kind", all_kinds())
def test_round_trip_preserves_field_values(kind):
    original = sample_message(Message.registry()[kind])
    decoded = decode_message(encode_message(original))
    for f in fields(original):
        assert getattr(decoded, f.name) == getattr(original, f.name), f.name


def test_tuples_survive_as_tuples():
    """Greet candidate lists are tuples and must stay tuples (they are
    compared and sliced as such on the receiving MSS)."""
    cls = Message.registry()["greet"]
    decoded = decode_message(encode_message(sample_message(cls)))
    assert isinstance(decoded.old_candidates, tuple)
    assert decoded.old_candidates == (NodeId("mss:s0"), NodeId("mss:s2"))


def test_proxy_ref_and_pref_payload_types():
    cls = Message.registry()["deregack"]
    decoded = decode_message(encode_message(sample_message(cls)))
    assert isinstance(decoded.pref, PrefPayload)
    assert isinstance(decoded.pref.ref, ProxyRef)
    assert decoded.pref.ref.mss == NodeId("mss:s1")
    assert decoded.pref.rkpr == 2


def test_encoding_is_deterministic():
    cls = Message.registry()["result_forward"]
    assert (encode_message(sample_message(cls))
            == encode_message(sample_message(cls)))


# -- failure modes ----------------------------------------------------------


def test_unknown_kind_rejected():
    with pytest.raises(CodecError):
        message_from_obj({"k": "no_such_kind", "f": {}})


def test_corrupt_bytes_rejected():
    with pytest.raises(CodecError):
        decode_message(b"{not json")
    with pytest.raises(CodecError):
        decode_message(b"\xff\xfe")


def test_malformed_shapes_rejected():
    with pytest.raises(CodecError):
        message_from_obj(["not", "a", "dict"])
    with pytest.raises(CodecError):
        message_from_obj({"k": "ack"})  # missing field block
    with pytest.raises(CodecError):
        message_from_obj({"k": "ack", "f": {"bogus_field": 1}})


def test_unencodable_payload_rejected_at_send_time():
    cls = Message.registry()["request"]
    msg = sample_message(cls)
    msg.payload = object()
    with pytest.raises(CodecError):
        encode_message(msg)
    msg.payload = {1: "non-string key"}
    with pytest.raises(CodecError):
        encode_message(msg)
    msg.payload = {"__tuple__": "tag collision"}
    with pytest.raises(CodecError):
        encode_message(msg)


def test_envelope_round_trip():
    env = {"t": "msg", "seq": 3, "src": "mss:s0", "dst": "mss:s1",
           "m": message_to_obj(sample_message(Message.registry()["ack"]))}
    assert decode_envelope(encode_envelope(env)) == json.loads(
        encode_envelope(env))
    with pytest.raises(CodecError):
        decode_envelope(b"[1,2,3]")  # no "t" key


# -- the golden fixture -----------------------------------------------------


def _current_golden():
    return {
        kind: encode_message(
            sample_message(Message.registry()[kind])).decode("utf-8")
        for kind in all_kinds()
    }


def test_wire_format_matches_golden_fixture():
    """The byte-level wire format is a compatibility surface: changing it
    silently would break mixed-version clusters.  Regenerate consciously
    with ``python tests/test_live_codec.py --regen``."""
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing - run: python {__file__} --regen")
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    current = _current_golden()
    assert set(current) == set(golden), (
        "message registry and golden fixture disagree on the set of kinds "
        "- regenerate the fixture")
    for kind in sorted(current):
        assert current[kind] == golden[kind], (
            f"wire format of {kind!r} changed - if intentional, regenerate "
            f"the fixture")


if __name__ == "__main__":
    if "--regen" in sys.argv:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(_current_golden(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        print(f"wrote {GOLDEN_PATH}")
    else:
        raise SystemExit(pytest.main([__file__, "-q"]))
