"""Replay the pinned fuzz corpus as fast regression tests.

``tests/corpus/`` holds seed files produced by the fuzz harness (see
docs/TESTING.md): shrunk reproducers of baseline weaknesses the oracle
must keep catching, and stress schedules on which RDP must keep holding
every invariant.  Assertions are on invariant *outcomes* only — never on
trace shapes or counts — so unrelated protocol changes don't invalidate
the corpus.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.verify import load_case, run_case

CORPUS = Path(__file__).parent / "corpus"
SEED_FILES = sorted(CORPUS.glob("*.json"))


def expected_invariants(path: Path) -> set:
    """Invariant names pinned in the seed file's violations list."""
    data = json.loads(path.read_text())
    names = set()
    for line in data.get("violations", []):
        match = re.match(r"\[([a-z_]+)\]", line)
        if match:
            names.add(match.group(1))
    return names


def test_corpus_is_present():
    assert SEED_FILES, "tests/corpus/ must contain pinned seed files"


@pytest.mark.parametrize("path", SEED_FILES, ids=lambda p: p.stem)
def test_corpus_seed_replays_to_pinned_outcome(path):
    case, protocol = load_case(path)
    result = run_case(case, protocol)
    expected = expected_invariants(path)
    if expected:
        # A pinned failure must keep failing the same invariants (the
        # oracle's ability to catch this weakness is the regression).
        assert expected <= set(result.invariants_hit()), (
            f"{path.name}: expected {sorted(expected)}, "
            f"got {result.invariants_hit()}")
    else:
        # A pinned stress schedule must stay violation-free under RDP.
        assert result.ok, f"{path.name}: {result.invariants_hit()}"
