"""Shape tests for AN13 (MSS crash injection)."""

from __future__ import annotations

from repro.experiments.an13_mss_failures import run_failures


def test_no_crashes_full_delivery():
    r = run_failures(None, client_retry=False, n_hosts=4, duration=150.0)
    assert r.crashes == 0
    assert r.delivery_ratio == 1.0
    assert r.nacks == 0


def test_crashes_with_retry_recover():
    r = run_failures(30.0, client_retry=True, n_hosts=4, duration=150.0,
                     seed=1)
    assert r.crashes > 0
    assert r.nacks > 0
    assert r.delivery_ratio > 0.95


def test_crashes_without_retry_lose_some():
    with_retry = run_failures(20.0, client_retry=True, n_hosts=5,
                              duration=200.0, seed=2)
    without = run_failures(20.0, client_retry=False, n_hosts=5,
                           duration=200.0, seed=2)
    assert with_retry.delivery_ratio >= without.delivery_ratio
    assert with_retry.delivery_ratio > 0.9
