"""Tests for the seed-sweep aggregation utility."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.experiments.an1_reliability import run_reliability
from repro.experiments.sweep import sweep, sweep_table


@dataclass
class _FakeResult:
    hits: int
    rate: float
    label: str = "x"
    flag: bool = True

    @property
    def double_rate(self) -> float:
        return self.rate * 2


def _fake_experiment(seed: int = 0) -> _FakeResult:
    return _FakeResult(hits=seed, rate=seed / 10.0)


def test_sweep_aggregates_numeric_fields_and_properties():
    stats = sweep(_fake_experiment, seeds=[1, 2, 3])
    assert stats["hits"]["mean"] == 2.0
    assert stats["hits"]["min"] == 1.0 and stats["hits"]["max"] == 3.0
    assert stats["rate"]["mean"] == pytest.approx(0.2)
    assert stats["double_rate"]["mean"] == pytest.approx(0.4)
    assert "label" not in stats            # strings excluded
    assert stats["flag"]["mean"] == 1.0    # bools become 0/1


def test_sweep_metric_filter():
    stats = sweep(_fake_experiment, seeds=[1, 2], metrics=["hits"])
    assert set(stats) == {"hits"}


def test_sweep_table_rendering():
    table = sweep_table(_fake_experiment, seeds=[1, 2, 3], title="fake",
                        metrics=["hits", "rate"])
    assert "fake (3 seeds)" in table.render()
    assert [row[0] for row in table.rows] == ["hits", "rate"]


def test_sweep_with_dict_results():
    stats = sweep(lambda seed=0: {"a": seed, "b": "s"}, seeds=[0, 4])
    assert stats["a"]["mean"] == 2.0
    assert "b" not in stats


def test_sweep_over_real_experiment():
    stats = sweep(run_reliability, seeds=[0, 1], protocol="rdp",
                  n_hosts=3, duration=60.0,
                  metrics=["delivery_ratio", "requests"])
    assert stats["delivery_ratio"]["mean"] == 1.0
    assert stats["delivery_ratio"]["sd"] == 0.0
    assert stats["requests"]["min"] > 0
