"""Tests for proxy placement policies."""

from __future__ import annotations

import pytest

from repro.core.placement import (
    CurrentCellPlacement,
    HomeMssPlacement,
    LeastLoadedPlacement,
)
from repro.errors import ConfigError
from repro.net.latency import ConstantLatency
from repro.types import NodeId

from tests.conftest import make_world


def test_current_cell_placement_returns_resp_mss():
    policy = CurrentCellPlacement()
    assert policy.place(NodeId("mh:m"), NodeId("mss:a")) == NodeId("mss:a")


def test_home_placement_uses_table():
    policy = HomeMssPlacement({NodeId("mh:m"): NodeId("mss:home")})
    assert policy.place(NodeId("mh:m"), NodeId("mss:away")) == NodeId("mss:home")
    with pytest.raises(ConfigError):
        policy.place(NodeId("mh:unknown"), NodeId("mss:away"))


def test_home_placement_needs_table():
    with pytest.raises(ConfigError):
        HomeMssPlacement({})


def test_least_loaded_picks_minimum_with_deterministic_ties():
    loads = {NodeId("mss:a"): 5.0, NodeId("mss:b"): 2.0, NodeId("mss:c"): 2.0}
    policy = LeastLoadedPlacement(list(loads), loads.get)
    assert policy.place(NodeId("mh:m"), NodeId("mss:a")) == NodeId("mss:b")


def test_world_home_placement_creates_proxy_at_home():
    world = make_world(placement="home", persistent_proxies=True)
    world.add_server("slow", service_time=ConstantLatency(1.0))
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    world.run(until=0.5)
    host.migrate_to(world.cells[2])   # move away from home first
    world.run(until=1.0)
    p = client.request("slow", 1)
    world.run_until_idle()
    assert p.done
    home_station = world.station(world.cells[0])
    assert len(home_station.proxies) == 1  # proxy at home, not at cell2
    assert world.metrics.count("remote_proxy_creations") == 1


def test_world_home_placement_proxy_is_persistent():
    world = make_world(placement="home", persistent_proxies=True)
    world.add_server("echo")
    client = world.add_host("m", world.cells[0])
    p1 = client.request("echo", 1)
    world.run_until_idle()
    p2 = client.request("echo", 2)
    world.run_until_idle()
    assert p1.done and p2.done
    assert world.metrics.count("proxies_created") == 1
    assert world.metrics.count("proxies_deleted") == 0
    assert world.live_proxy_count() == 1


def test_world_least_loaded_placement_spreads_proxies():
    world = make_world(placement="least_loaded", n_cells=3)
    world.add_server("echo")
    clients = [world.add_host(f"m{i}", world.cells[0]) for i in range(6)]
    world.run(until=1.0)
    for c in clients:
        c.request("echo", 1)
    world.run_until_idle()
    created = world.metrics.per_node("proxies_created")
    assert len(created) >= 2  # not all at the same MSS


def test_remote_creation_queues_concurrent_requests():
    world = make_world(placement="home", persistent_proxies=True)
    world.add_server("echo")
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    world.run(until=0.5)
    host.migrate_to(world.cells[2])
    world.run(until=1.0)
    # Two requests back to back: the second arrives while the remote
    # proxy creation is still in flight and must be queued, not doubled.
    p1 = client.request("echo", 1)
    p2 = client.request("echo", 2)
    world.run_until_idle()
    assert p1.done and p2.done
    assert world.metrics.count("proxies_created") == 1
