"""Shaping-channel parity: the live backend's fault plans are the sim's.

Two contracts pinned here:

* **Plan parity** — :func:`repro.live.channel.build_wired_plan` /
  ``build_wireless_plan`` derive fault plans from a root seed exactly the
  way :class:`repro.world.World` does (the ``faults.wired`` /
  ``faults.wireless`` RngStreams substreams), so a live cluster and its
  sim twin consult identical fault schedules.
* **Draw-order parity** — :class:`repro.live.channel.InboundShaper`
  consumes the plan's RNG in the same per-frame order as
  :meth:`repro.net.wired.WiredNetwork._transmit` (cut, loss, dup, dup's
  extra delay, main extra delay), and the wireless verdict mirrors the
  sim channel's gate order.  Verified by running both consumption
  patterns over twin plans and checking the verdicts *and* the
  post-sequence RNG state agree.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.config import (  # noqa: E402
    WiredFaultSpec,
    WirelessFaultSpec,
    WorldConfig,
)
from repro.live.channel import (  # noqa: E402
    InboundShaper,
    WirelessShaper,
    build_wired_plan,
    build_wireless_plan,
)
from repro.sim.rng import RngStreams  # noqa: E402
from repro.types import CellId, NodeId  # noqa: E402
from repro.world import World  # noqa: E402

SEED = 20260808

WIRED_SPEC = WiredFaultSpec(loss=0.2, duplication=0.1,
                            spike_probability=0.15, spike=0.05,
                            reorder=0.1, reorder_spread=0.02)

WIRELESS_SPEC = WirelessFaultSpec(loss=0.1, burst_probability=0.05,
                                  burst_length=0.5, burst_loss=0.9,
                                  congestion_probability=0.1,
                                  congestion_delay=0.03,
                                  handoff_blackout=0.2)


def test_inactive_specs_build_no_plan():
    assert build_wired_plan(SEED, None) is None
    assert build_wired_plan(SEED, WiredFaultSpec()) is None
    assert build_wireless_plan(SEED, None) is None
    assert build_wireless_plan(SEED, WirelessFaultSpec()) is None


def test_wired_plan_matches_world_recipe():
    """Same seed, same spec -> the world's plan and the live plan draw
    identical sequences (they are seeded from the same substream)."""
    world = World(WorldConfig(seed=SEED, n_cells=2,
                              wired_faults=WIRED_SPEC))
    live_plan = build_wired_plan(SEED, WIRED_SPEC)
    world_plan = world.wired.faults
    assert world_plan is not None and live_plan is not None
    assert live_plan.describe() == world_plan.describe()
    for _ in range(500):
        assert live_plan.lost() == world_plan.lost()
        assert live_plan.duplicated() == world_plan.duplicated()
        assert live_plan.extra_delay() == world_plan.extra_delay()
    # Streams still in lockstep after 500 frames' worth of draws.
    assert live_plan.rng.random() == world_plan.rng.random()


def test_wireless_plan_matches_world_recipe():
    world = World(WorldConfig(seed=SEED, n_cells=2,
                              wireless_faults=WIRELESS_SPEC))
    live_plan = build_wireless_plan(SEED, WIRELESS_SPEC)
    world_plan = world.wireless.faults
    assert world_plan is not None and live_plan is not None
    assert live_plan.describe() == world_plan.describe()
    cell = CellId("cell0")
    host = NodeId("mh:h0")
    now = 0.0
    for step in range(500):
        now = step * 0.01
        if step == 100:
            live_plan.note_handoff(host, now)
            world_plan.note_handoff(host, now)
        assert (live_plan.in_handoff_blackout(host, now)
                == world_plan.in_handoff_blackout(host, now))
        assert live_plan.lost(cell, now) == world_plan.lost(cell, now)
        assert live_plan.extra_delay() == world_plan.extra_delay()
    assert live_plan.rng.random() == world_plan.rng.random()


def test_inbound_shaper_consumes_draws_in_sim_transmit_order():
    """Twin plans, one consumed by the sim's per-frame pattern, one by
    the shaper: verdicts match frame by frame, and the RNG streams stay
    in lockstep (proof nothing extra or missing was drawn)."""
    sim_plan = build_wired_plan(SEED, WIRED_SPEC)
    live_plan = build_wired_plan(SEED, WIRED_SPEC)
    shaper = InboundShaper(live_plan)
    src, dst = NodeId("mss:s0"), NodeId("mss:s1")
    for frame in range(500):
        now = frame * 0.01
        # The sim's _transmit consumption pattern, verbatim:
        if sim_plan.cut(src, dst, now):
            sim_outcome = ("cut",)
        elif sim_plan.lost():
            sim_outcome = ("lost",)
        elif sim_plan.duplicated():
            dup_delay = sim_plan.extra_delay()
            sim_outcome = ("dup", dup_delay, sim_plan.extra_delay())
        else:
            sim_outcome = ("deliver", sim_plan.extra_delay())

        verdict = shaper.verdict(src, dst, now)
        if sim_outcome[0] == "lost":
            assert not verdict.deliver and verdict.reason == "loss"
        elif sim_outcome[0] == "dup":
            assert verdict.deliver and verdict.duplicate
            assert verdict.extra_delay == sim_outcome[2]
        else:
            assert verdict.deliver and not verdict.duplicate
            assert verdict.extra_delay == sim_outcome[1]
    assert sim_plan.rng.random() == live_plan.rng.random()


def test_inbound_shaper_partition_short_circuits_without_draws():
    spec = WiredFaultSpec(loss=0.5, partitions=(
        ("mss:s0", "mss:s1", 1.0, 2.0),))
    plan = build_wired_plan(SEED, spec)
    shaper = InboundShaper(plan)
    state_before = plan.rng.getstate()
    verdict = shaper.verdict(NodeId("mss:s0"), NodeId("mss:s1"), 1.5)
    assert not verdict.deliver and verdict.reason == "partition"
    assert plan.rng.getstate() == state_before, (
        "a partition cut must not consume loss/dup draws — the sim's "
        "short-circuit order is part of the determinism contract")


def test_inbound_shaper_without_plan_delivers_everything():
    shaper = InboundShaper(None)
    for frame in range(50):
        verdict = shaper.verdict(NodeId("a"), NodeId("b"), frame * 0.1)
        assert verdict.deliver and not verdict.duplicate
        assert verdict.extra_delay == 0.0


def test_wireless_shaper_flat_loss_matches_seeded_stream():
    """The flat (plan-less) loss draw is the sim channel's: one
    ``rng.random() < p`` per frame from a named substream."""
    rng_a = RngStreams(SEED).stream("live.wireless")
    rng_b = RngStreams(SEED).stream("live.wireless")
    shaper = WirelessShaper(None, loss_probability=0.3, rng=rng_a)
    cell, host = CellId("cell0"), NodeId("mh:h0")
    for frame in range(500):
        expected = "loss" if rng_b.random() < 0.3 else None
        assert shaper.verdict(cell, host, frame * 0.01) == expected


def test_wireless_shaper_handoff_blackout_gates_before_draws():
    plan = build_wireless_plan(SEED, WIRELESS_SPEC)
    shaper = WirelessShaper(plan)
    cell, host = CellId("cell0"), NodeId("mh:h0")
    shaper.note_handoff(host, 1.0)
    state_before = plan.rng.getstate()
    assert shaper.verdict(cell, host, 1.1) == "handoff_blackout"
    assert plan.rng.getstate() == state_before
    # Outside the window the plan draws again.
    assert shaper.verdict(cell, host, 1.1 + WIRELESS_SPEC.handoff_blackout) \
        in (None, "burst", "fault_loss")
