"""Property-based tests of the mail application.

Random operation sequences (send / list / fetch / delete, interleaved
with sleeps and migrations of the recipient) must preserve mailbox
consistency and exactly-once inbox push per mail.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.servers.mail import MailServer
from repro.types import MhState

from tests.conftest import make_world

_ops = st.lists(
    st.tuples(
        st.sampled_from(["send", "send", "send", "delete", "sleep", "wake",
                         "migrate"]),
        st.integers(min_value=0, max_value=2),   # cell target / mail index
    ),
    min_size=3, max_size=16,
)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=_ops, seed=st.integers(min_value=0, max_value=2),
       subscribe_late=st.booleans())
def test_mailbox_consistency_under_random_ops(ops, seed, subscribe_late):
    world = make_world(seed=seed)
    server = world.add_server("mail", MailServer)
    alice = world.add_host("alice", world.cells[0])
    bob = world.add_host("bob", world.cells[1])
    host = world.hosts["bob"]

    inbox = None
    if not subscribe_late:
        inbox = bob.subscribe("mail", {"user": "bob"})
    world.run(until=1.0)

    sent_subjects = []
    deleted_ids = set()
    sent_results = []
    at = 1.0
    for op, arg in ops:
        at += 0.7
        def step(op=op, arg=arg) -> None:
            if op == "send":
                subject = f"mail-{len(sent_subjects)}"
                sent_subjects.append(subject)
                sent_results.append(alice.request("mail", {
                    "op": "send", "to": "bob", "from": "alice",
                    "subject": subject}))
            elif op == "delete" and sent_results:
                target = sent_results[arg % len(sent_results)]
                if target.done and target.result.get("mail_id"):
                    deleted_ids.add(target.result["mail_id"])
                    alice.request("mail", {"op": "delete", "user": "bob",
                                           "mail_id": target.result["mail_id"]})
            elif op == "sleep" and host.state is MhState.ACTIVE:
                host.deactivate()
            elif op == "wake" and host.state is MhState.INACTIVE:
                host.activate()
            elif op == "migrate" and host.state is MhState.ACTIVE:
                target_cell = world.cells[arg]
                if host.current_cell != target_cell:
                    host.migrate_to(target_cell)
        world.sim.schedule_at(at, step)

    world.run(until=at + 5.0)
    if host.state is MhState.INACTIVE:
        host.activate()
    if inbox is None:
        inbox = bob.subscribe("mail", {"user": "bob"})   # late: backlog push
    world.run(until=at + 40.0)

    # Every send was accepted exactly once at the server.
    accepted = [p for p in sent_results if p.done]
    assert len(accepted) == len(sent_results)
    mail_ids = [p.result["mail_id"] for p in accepted]
    assert len(set(mail_ids)) == len(mail_ids)

    # The stored mailbox equals sent minus deleted.
    listed = alice.request("mail", {"op": "list", "user": "bob"})
    world.run(until=world.sim.now + 5.0)
    stored_ids = {m["mail_id"] for m in listed.result["mail"]}
    assert stored_ids == set(mail_ids) - deleted_ids

    # The push channel delivered each mail at most once (exactly once for
    # the early subscriber; late subscribers get the surviving backlog).
    pushed_ids = [n["mail_id"] for n in inbox.notifications]
    assert len(set(pushed_ids)) == len(pushed_ids)
    if not subscribe_late:
        assert set(pushed_ids) == set(mail_ids)
