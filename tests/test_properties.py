"""Property-based tests (hypothesis).

The heart of the paper is a liveness + safety pair:

* every admitted request is eventually delivered (at-least-once), no
  matter how the MH migrates and sleeps;
* the application never sees a result twice (exactly-once at the app).

We generate arbitrary mobility/activity schedules and request timings,
replay them, drive the world to quiescence and check both properties plus
the structural invariants (single custody, pref consistency).  Further
properties cover the causal ordering layer and the vector clock algebra.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.verify import check_all
from repro.config import LatencySpec, WorldConfig
from repro.experiments.harness import drain
from repro.mobility.trace import ACTIVATE, DEACTIVATE, MIGRATE, MobilityTrace, TraceReplayer
from repro.net.causal import CausalOrdering
from repro.net.message import Message
from repro.net.vectorclock import VectorClock
from repro.servers.echo import EchoServer
from repro.net.latency import ConstantLatency
from repro.types import NodeId
from repro.world import World

N_CELLS = 4

_step = st.tuples(
    st.floats(min_value=0.01, max_value=30.0),
    st.sampled_from([MIGRATE, MIGRATE, ACTIVATE, DEACTIVATE]),
    st.integers(min_value=0, max_value=N_CELLS - 1),
)

_schedule = st.lists(_step, min_size=0, max_size=14)
_request_times = st.lists(st.floats(min_value=0.05, max_value=25.0),
                          min_size=1, max_size=5)


def _build_world(seed: int) -> World:
    config = WorldConfig(
        seed=seed,
        n_cells=N_CELLS,
        topology="ring",
        wired_latency=LatencySpec(kind="constant", mean=0.010),
        wireless_latency=LatencySpec(kind="constant", mean=0.005),
        trace=True,
    )
    return World(config)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(schedule=_schedule, request_times=_request_times,
       seed=st.integers(min_value=0, max_value=3))
def test_delivery_invariants_under_arbitrary_mobility(schedule, request_times,
                                                      seed):
    world = _build_world(seed)
    world.add_server("echo", EchoServer, service_time=ConstantLatency(0.4))
    client = world.add_host("m", world.cells[0], retry_interval=3.0)
    host = world.hosts["m"]

    trace = MobilityTrace()
    for at, event, cell in schedule:
        trace.add(at, event, cell=f"cell{cell}" if event == MIGRATE else None)
    replayer = TraceReplayer(world.sim, host, trace)
    replayer.start()

    issued = []

    def issue(tag: int) -> None:
        if host.state.value == "active":
            issued.append(client.request("echo", tag))

    for i, at in enumerate(sorted(request_times)):
        world.sim.schedule_at(at, issue, i)

    world.run(until=60.0)
    drain(world)

    # Liveness: everything issued was delivered.
    assert all(p.done for p in issued)
    # Safety: exactly-once at the application.
    per_request = Counter(rid for _, rid, _ in host.deliveries)
    assert all(count == 1 for count in per_request.values())
    # Structural invariants.
    report = check_all(world, expect_quiescent=True)
    assert report.ok, report.violations


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                min_size=1, max_size=25),
       st.randoms(use_true_random=False))
def test_causal_ordering_never_inverts_causality(pairs, rng):
    """Random send patterns + adversarial arrival order: deliveries at
    every node must respect the send/deliver partial order."""
    from dataclasses import dataclass
    from typing import ClassVar

    @dataclass(slots=True, kw_only=True)
    class _P(Message):
        kind: ClassVar[str] = "p"
        uid: int = 0

    layer = CausalOrdering()
    nodes = [NodeId(f"n{i}") for i in range(4)]
    # Build sends; each node immediately "delivers" nothing yet — we queue
    # arrivals and shuffle them per destination.
    arrivals = {node: [] for node in nodes}
    # Track causal order via per-message vector timestamps recorded at
    # send time: if message a was sent by the same node before b, or was
    # delivered at b's sender before b was sent, then a -> b.
    send_vts = {}
    uid = 0
    delivered_vt = {node: VectorClock() for node in nodes}

    # To make causality real, we interleave: half the time we flush a
    # random pending arrival before the next send.
    for src_i, dst_i in pairs:
        src, dst = nodes[src_i], nodes[dst_i]
        if arrivals[src] and rng.random() < 0.5:
            stamped = arrivals[src].pop(rng.randrange(len(arrivals[src])))
            layer.on_arrival(src, stamped, lambda m: None)
        msg = _P(uid=uid)
        msg.src, msg.dst = src, dst
        stamped = layer.on_send(src, dst, msg)
        send_vts[uid] = stamped.stamp.copy()
        arrivals[dst].append(stamped)
        uid += 1

    delivered_order = {node: [] for node in nodes}
    for node in nodes:
        rng.shuffle(arrivals[node])
        for stamped in arrivals[node]:
            layer.on_arrival(node, stamped,
                             lambda m, n=node: delivered_order[n].append(m.uid))

    for node, uids in delivered_order.items():
        for i, later in enumerate(uids):
            for earlier in uids[i + 1:]:
                # 'earlier' was delivered after 'later': it must not be a
                # causal predecessor of 'later'.
                assert not (send_vts[earlier] < send_vts[later]), (
                    f"{earlier} causally precedes {later} but was "
                    f"delivered after it at {node}")


@settings(max_examples=60, deadline=None)
@given(st.dictionaries(st.sampled_from("abcd"), st.integers(0, 5)),
       st.dictionaries(st.sampled_from("abcd"), st.integers(0, 5)),
       st.dictionaries(st.sampled_from("abcd"), st.integers(0, 5)))
def test_vector_clock_algebra(d1, d2, d3):
    a, b, c = VectorClock(d1), VectorClock(d2), VectorClock(d3)
    merged = a.merged(b)
    # Merge is an upper bound of both.
    assert merged.dominates(a) and merged.dominates(b)
    # Merge is commutative and idempotent.
    assert merged == b.merged(a)
    assert a.merged(a) == a
    # Associativity.
    assert a.merged(b).merged(c) == a.merged(b.merged(c))
    # Partial-order consistency: <= is antisymmetric up to equality.
    if a <= b and b <= a:
        assert a == b
    # Exactly one of: a<=b, b<a, concurrent.
    relations = [a <= b, b < a, a.concurrent_with(b)]
    assert sum(relations) == 1


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                min_size=1, max_size=30))
def test_jain_fairness_bounds_property(values):
    from repro.analysis.stats import jain_fairness

    fairness = jain_fairness(values)
    assert 0.0 <= fairness <= 1.0 + 1e-9
    if len(set(values)) == 1 and values[0] > 0:
        assert abs(fairness - 1.0) < 1e-9


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                min_size=1, max_size=50),
       st.floats(min_value=0.0, max_value=100.0))
def test_percentile_monotone_property(values, q):
    from repro.analysis.stats import percentile

    assert min(values) <= percentile(values, q) <= max(values)
    assert percentile(values, 0) == min(values)
    assert percentile(values, 100) == max(values)
