"""Tests for the small shared modules: types, errors, instruments,
monitor, mobility traces, message registry."""

from __future__ import annotations

import pytest

from repro.errors import (
    ConfigError,
    HandoffError,
    MobilityError,
    NetworkError,
    ProtocolError,
    ProxyError,
    ReproError,
    SchedulingError,
    SimulationError,
    UnknownNodeError,
    VerificationError,
)
from repro.instruments import Instruments
from repro.mobility.trace import (
    ACTIVATE,
    DEACTIVATE,
    MIGRATE,
    MobilityTrace,
    TraceReplayer,
    TraceStep,
)
from repro.net.message import Message, _payload_size
from repro.net.monitor import NetworkMonitor
from repro.types import (
    MhState,
    ProxyRef,
    is_mh,
    is_mss,
    is_server,
    mh_id,
    mss_id,
    server_id,
)

from tests.conftest import make_world


# -- types ------------------------------------------------------------------------

def test_node_id_builders_and_predicates():
    assert mss_id("a") == "mss:a" and is_mss(mss_id("a"))
    assert mh_id("b") == "mh:b" and is_mh(mh_id("b"))
    assert server_id("c") == "srv:c" and is_server(server_id("c"))
    assert not is_mss(mh_id("b")) and not is_mh(server_id("c"))


def test_proxy_ref_is_hashable_value_object():
    a = ProxyRef(mss=mss_id("x"), proxy_id="p1")
    b = ProxyRef(mss=mss_id("x"), proxy_id="p1")
    assert a == b and hash(a) == hash(b)
    assert str(a) == "mss:x/p1"
    with pytest.raises(Exception):
        a.mss = mss_id("y")  # frozen


# -- errors -----------------------------------------------------------------------

@pytest.mark.parametrize("exc", [
    SimulationError, SchedulingError, NetworkError, UnknownNodeError,
    ProtocolError, HandoffError, ProxyError, MobilityError, ConfigError,
    VerificationError,
])
def test_all_errors_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)
    with pytest.raises(ReproError):
        raise exc("boom")


def test_scheduling_error_is_simulation_error():
    assert issubclass(SchedulingError, SimulationError)
    assert issubclass(UnknownNodeError, NetworkError)
    assert issubclass(HandoffError, ProtocolError)


# -- instruments -------------------------------------------------------------------

def test_instruments_default_records():
    instr = Instruments()
    instr.recorder.record(1.0, "x", "n")
    assert len(instr.recorder) == 1


def test_instruments_disabled_records_nothing():
    instr = Instruments.disabled()
    instr.recorder.record(1.0, "x", "n")
    assert len(instr.recorder) == 0
    assert instr.recorder.counts == {}


# -- monitor ----------------------------------------------------------------------

def test_monitor_kind_histogram_and_drops():
    from repro.core.protocol import AckMsg, RequestMsg
    from repro.types import NodeId, RequestId

    monitor = NetworkMonitor()
    req = RequestMsg(mh=mh_id("m"), request_id=RequestId("r"), service="s")
    req.src, req.dst = NodeId("a"), NodeId("b")
    ack = AckMsg(mh=mh_id("m"), request_id=RequestId("r"), delivery_id=1)
    ack.src, ack.dst = NodeId("b"), NodeId("a")
    monitor.on_send("wireless", req)
    monitor.on_send("wireless", ack)
    monitor.on_deliver("wireless", req)
    monitor.on_drop("wireless", ack, "loss")
    hist = monitor.kind_histogram()
    assert hist == {"request": 1, "ack": 1}
    assert monitor.total_messages() == 2
    assert monitor.drops() == 1 and monitor.drops("loss") == 1
    assert monitor.drops("not_in_cell") == 0
    assert monitor.load_of(NodeId("a")) == 1       # sent the request
    assert monitor.load_of(NodeId("b")) == 2       # sent the ack + received


# -- payload size model --------------------------------------------------------------

@pytest.mark.parametrize("value,expected", [
    (None, 0),
    (True, 1),
    (7, 8),
    (1.5, 8),
    ("abc", 3),
    (b"abcd", 4),
])
def test_payload_size_scalars(value, expected):
    assert _payload_size(value) == expected


def test_payload_size_containers():
    assert _payload_size([1, 2]) == 16 + 8
    assert _payload_size({"k": "vv"}) == 1 + 2


# -- mobility trace replay -------------------------------------------------------------

def test_trace_step_validation():
    with pytest.raises(MobilityError):
        TraceStep(time=1.0, event="teleport")
    with pytest.raises(MobilityError):
        TraceStep(time=1.0, event=MIGRATE)  # needs a cell
    with pytest.raises(MobilityError):
        TraceStep(time=-1.0, event=ACTIVATE)


def test_trace_sorted_and_len():
    trace = MobilityTrace().add(5.0, ACTIVATE).add(1.0, DEACTIVATE)
    ordered = trace.sorted()
    assert [s.time for s in ordered.steps] == [1.0, 5.0]
    assert len(trace) == 2


def test_replayer_applies_and_skips():
    world = make_world()
    world.add_host("m", world.cells[0])
    world.run_until_idle()
    host = world.hosts["m"]
    trace = (MobilityTrace()
             .add(1.0, MIGRATE, cell=world.cells[1])
             .add(1.5, MIGRATE, cell=world.cells[1])   # same cell -> skipped
             .add(2.0, ACTIVATE)                        # already active -> skipped
             .add(3.0, DEACTIVATE)
             .add(4.0, DEACTIVATE)                      # already off -> skipped
             .add(5.0, ACTIVATE))
    replayer = TraceReplayer(world.sim, host, trace)
    replayer.start()
    world.run_until_idle()
    assert replayer.applied == 3
    assert replayer.skipped == 3
    assert host.current_cell == world.cells[1]
    assert host.state is MhState.ACTIVE


# -- message registry ----------------------------------------------------------------

def test_message_registry_is_complete():
    # Kind registration happens at class-definition time; make sure every
    # message-defining module is imported.
    import repro.baselines.itcp_like  # noqa: F401
    import repro.servers.tis  # noqa: F401

    registry = Message.registry()
    # Every protocol kind plus the TIS overlay and ordered-multicast kinds.
    for kind in ("join", "leave", "greet", "registered", "request", "ack",
                 "wireless_result", "dereg", "deregack", "update_currentloc",
                 "forwarded_request", "result_forward", "del_pref_notice",
                 "ack_forward", "create_proxy", "proxy_created", "proxy_gone",
                 "server_request", "server_result", "server_ack",
                 "notification", "subscription_end", "tis_lookup",
                 "tis_lookup_reply", "tis_update", "tis_update_ack",
                 "tis_replicate", "tis_subscribe", "itcp_chased_result"):
        assert kind in registry, kind
