"""Custody-chain stress tests.

The hand-off protocol's hardest regime is residence time *below* the
hand-off latency: greets, deregs and deregacks from several incarnations
overlap.  These tests (including a hypothesis property) hammer that
regime and assert the custody chain never loses the pref, never forks,
and the MH always ends up registered with its requests delivered.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.verify import check_all
from repro.config import LatencySpec, WorldConfig
from repro.experiments.harness import drain
from repro.net.latency import ConstantLatency
from repro.servers.echo import EchoServer
from repro.world import World

from tests.conftest import make_world


def _bounce_world(proc_delay: float = 0.0, ordering: str = "causal",
                  seed: int = 0) -> World:
    return World(WorldConfig(
        seed=seed,
        n_cells=4,
        topology="ring",
        wired_latency=LatencySpec(kind="constant", mean=0.010),
        wireless_latency=LatencySpec(kind="constant", mean=0.005),
        proc_delay=proc_delay,
        ordering=ordering,
    ))


def test_rapid_bounce_storm_deterministic():
    """A scripted storm: 40 migrations at 3ms intervals (hand-off takes
    ~25ms), bouncing back and forth, with a slow request pending."""
    world = _bounce_world()
    world.add_server("slow", EchoServer, service_time=ConstantLatency(2.0))
    client = world.add_host("m", world.cells[0], retry_interval=2.0)
    host = world.hosts["m"]
    world.sim.schedule(0.05, client.request, "slow", 1)
    for i in range(40):
        target = world.cells[i % 2]  # bounce cell1 <-> cell0
        world.sim.schedule(0.2 + 0.003 * (i + 1), host.migrate_to,
                           world.cells[(i + 1) % 2])
    world.run(until=30.0)
    drain(world)
    assert host.registered
    assert list(client.requests.values())[0].done
    report = check_all(world, expect_quiescent=True)
    assert report.ok, report.violations


def test_bounce_storm_with_busy_stations():
    world = _bounce_world(proc_delay=0.006)
    world.add_server("slow", EchoServer, service_time=ConstantLatency(1.0))
    client = world.add_host("m", world.cells[0], retry_interval=2.0)
    host = world.hosts["m"]
    world.sim.schedule(0.05, client.request, "slow", 1)
    for i in range(30):
        world.sim.schedule(0.2 + 0.004 * (i + 1), host.migrate_to,
                           world.cells[(i + 1) % 3])
    world.run(until=60.0)
    drain(world)
    assert list(client.requests.values())[0].done
    report = check_all(world, expect_quiescent=True)
    assert report.ok, report.violations


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    gaps=st.lists(st.floats(min_value=0.001, max_value=0.05),
                  min_size=3, max_size=20),
    cells=st.lists(st.integers(min_value=0, max_value=3),
                   min_size=3, max_size=20),
    proc_delay=st.sampled_from([0.0, 0.003, 0.008]),
    seed=st.integers(min_value=0, max_value=2),
)
def test_custody_survives_arbitrary_bounce_schedules(gaps, cells, proc_delay,
                                                     seed):
    """Arbitrary sub-hand-off-latency migration schedules: the pref must
    follow the MH, requests complete, custody never forks."""
    world = _bounce_world(proc_delay=proc_delay, seed=seed)
    world.add_server("slow", EchoServer, service_time=ConstantLatency(0.8))
    client = world.add_host("m", world.cells[0], retry_interval=2.0)
    host = world.hosts["m"]
    world.sim.schedule(0.05, client.request, "slow", "payload")
    at = 0.2
    for gap, cell in zip(gaps, cells):
        at += gap
        world.sim.schedule(at, lambda c=world.cells[cell]: (
            host.migrate_to(c) if host.state.value == "active"
            and host.current_cell != c else None))
    world.run(until=60.0)
    drain(world)
    assert host.registered
    assert all(p.done for p in client.requests.values())
    # Exactly one station owns the MH.
    owners = [s for s in world.stations.values()
              if host.node_id in s.local_mhs]
    assert len(owners) == 1
    report = check_all(world, expect_quiescent=True)
    assert report.ok, report.violations


def test_many_hosts_bouncing_together():
    world = _bounce_world(seed=3)
    world.add_server("slow", EchoServer, service_time=ConstantLatency(1.5))
    clients = []
    for i in range(6):
        client = world.add_host(f"m{i}", world.cells[i % 4],
                                retry_interval=2.0)
        clients.append(client)
        world.sim.schedule(0.05, client.request, "slow", i)
        host = world.hosts[f"m{i}"]
        for j in range(15):
            world.sim.schedule(
                0.2 + 0.005 * (j + 1) + 0.001 * i,
                lambda h=host, c=world.cells[(i + j + 1) % 4]: (
                    h.migrate_to(c) if h.current_cell != c else None))
    world.run(until=60.0)
    drain(world)
    for client in clients:
        assert all(p.done for p in client.requests.values())
    report = check_all(world, expect_quiescent=True)
    assert report.ok, report.violations
