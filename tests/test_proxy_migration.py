"""Tests for proxy migration (the future-work extension)."""

from __future__ import annotations

import pytest

from repro.analysis.verify import check_all
from repro.config import LatencySpec, WorldConfig
from repro.net.latency import ConstantLatency
from repro.servers.echo import EchoServer, ManualServer
from repro.servers.multicast import GroupServer
from repro.world import World


def migration_world(distance=3.0, n_cells=8, **overrides):
    config = WorldConfig(
        n_cells=n_cells,
        topology="line",
        wired_latency=LatencySpec(kind="constant", mean=0.005),
        wireless_latency=LatencySpec(kind="constant", mean=0.003),
        proxy_migrate_distance=distance,
        **overrides,
    )
    return World(config)


def _walk(world, host, start, stop):
    for i in range(start, stop):
        host.migrate_to(world.cells[i])
        world.run(until=world.sim.now + 1.0)


def test_proxy_follows_far_roaming_subscriber():
    world = migration_world()
    world.add_server("groups", GroupServer)
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    sub = client.subscribe("groups", {"group": "g"})
    world.run(until=1.0)
    _walk(world, host, 1, 8)
    assert world.metrics.count("proxies_moved_in") >= 1
    assert world.metrics.count("subscriptions_relocated") >= 1
    proxies = world.proxies_of("m")
    assert len(proxies) == 1
    # The surviving proxy is within the threshold of the current station.
    station = world.stations[host.current_cell]
    assert world._station_distance(proxies[0].host.node_id,
                                   station.node_id) < 3.0


def test_no_migration_below_threshold():
    world = migration_world(distance=10.0)
    world.add_server("groups", GroupServer)
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    client.subscribe("groups", {"group": "g"})
    world.run(until=1.0)
    _walk(world, host, 1, 8)
    assert world.metrics.count("proxy_migrations_started") == 0


def test_disabled_by_default():
    world = World(WorldConfig(n_cells=8, topology="line"))
    world.add_server("groups", GroupServer)
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    client.subscribe("groups", {"group": "g"})
    world.run(until=1.0)
    _walk(world, host, 1, 8)
    assert world.metrics.count("proxy_migrations_started") == 0
    proxies = world.proxies_of("m")
    assert proxies[0].host.node_id == world.station(world.cells[0]).node_id


def test_pending_request_survives_move():
    """A request whose result is still at the server rides the move."""
    world = migration_world()
    server = world.add_server("manual", ManualServer)
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    p = client.request("manual", "x")
    world.run(until=1.0)
    _walk(world, host, 1, 6)
    assert world.metrics.count("proxies_moved_in") >= 1
    # The reply goes to the OLD address (the server's reply_to is stale):
    # the stub must chase it to the moved proxy.
    server.release(p.request_id, "late-answer")
    world.run(until=world.sim.now + 5.0)
    assert p.done and p.result == "late-answer"
    assert world.metrics.count("stub_forwards") >= 1
    world.run_until_idle()
    assert world.live_proxy_count() == 0


def test_unacked_result_resent_from_new_home():
    world = migration_world()
    server = world.add_server("manual", ManualServer)
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    p = client.request("manual", "x")
    world.run(until=1.0)
    host.deactivate()                      # miss the delivery
    server.release(p.request_id, "zzz")
    world.run(until=2.0)
    host.migrate_to(world.cells[5])        # carried while asleep
    host.activate()                        # wake far away -> move triggers
    world.run(until=world.sim.now + 10.0)
    assert p.done and p.result == "zzz"
    assert world.metrics.count("proxies_moved_in") == 1
    world.run_until_idle()
    assert world.live_proxy_count() == 0


def test_custody_invariants_hold_with_migration():
    world = migration_world()
    world.add_server("echo", EchoServer, service_time=ConstantLatency(0.3))
    client = world.add_host("m", world.cells[0], retry_interval=2.0)
    host = world.hosts["m"]
    sub_server = world.add_server("groups", GroupServer)
    sub = client.subscribe("groups", {"group": "g"})
    world.run(until=1.0)
    for i in list(range(1, 8)) + list(range(6, 0, -1)):
        client.request("echo", i)
        host.migrate_to(world.cells[i])
        world.run(until=world.sim.now + 0.8)
    world.run(until=world.sim.now + 10.0)
    assert all(p.done for p in client.requests.values())
    report = check_all(world, expect_quiescent=True)
    assert report.ok, report.violations


def test_migrate_request_for_vanished_proxy_is_answered():
    """A migrate request racing the proxy's deletion must not wedge the
    initiator's inflight marker."""
    world = migration_world()
    world.add_server("echo")
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    p = client.request("echo", 1)
    world.run_until_idle()                  # request done; proxy deleted
    assert p.done
    station = world.stations[host.current_cell]
    # Force an initiate against the stale (deleted) ref.
    from repro.types import ProxyId, ProxyRef
    pref = station.prefs.ensure(host.node_id)
    pref.ref = ProxyRef(mss=world.station(world.cells[5]).node_id,
                        proxy_id=ProxyId("ghost"))
    station._maybe_migrate_proxy(host.node_id)
    world.run_until_idle()
    assert world.metrics.count("proxy_migrate_misses") == 1
    assert host.node_id not in station._migrations_inflight
