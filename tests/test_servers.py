"""Tests for application servers: base behaviour, manual server,
subscriptions and group multicast."""

from __future__ import annotations

import pytest

from repro.net.latency import ConstantLatency
from repro.servers.echo import EchoServer, ManualServer, TaggingServer
from repro.servers.multicast import GroupServer
from repro.servers.subscription import SubscriptionRegistry
from repro.types import NodeId, ProxyId, ProxyRef, RequestId

from tests.conftest import make_world


def test_server_registers_in_directory(world):
    server = world.add_server("echo")
    assert world.directory.lookup("echo") == server.node_id


def test_service_name_can_differ_from_server_name(world):
    server = world.add_server("box", EchoServer, service="compute.fast")
    assert world.directory.lookup("compute.fast") == server.node_id


def test_service_time_delays_reply(world):
    world.add_server("slow", EchoServer, service_time=ConstantLatency(2.0))
    client = world.add_host("m", world.cells[0])
    p = client.request("slow", "x")
    world.run(until=1.5)
    assert not p.done
    world.run_until_idle()
    assert p.done


def test_tagging_server_counts_serials(world):
    world.add_server("tag", TaggingServer)
    client = world.add_host("m", world.cells[0])
    p1 = client.request("tag", "a")
    world.run_until_idle()
    p2 = client.request("tag", "b")
    world.run_until_idle()
    assert p1.result["serial"] == 1
    assert p2.result["serial"] == 2
    assert p1.result["server"] == "tag"


def test_manual_server_release_order(world):
    server = world.add_server("manual", ManualServer)
    client = world.add_host("m", world.cells[0])
    p1 = client.request("manual", "first")
    p2 = client.request("manual", "second")
    world.run(until=1.0)
    assert len(server.held) == 2
    released = server.release_next()
    assert released == p1.request_id
    world.run_until_idle()
    assert p1.done and not p2.done
    server.release(p2.request_id, "custom")
    world.run_until_idle()
    assert p2.result == "custom"


def test_server_acks_when_enabled():
    world = make_world(send_server_acks=True)
    server = world.add_server("echo")
    client = world.add_host("m", world.cells[0])
    client.request("echo", 1)
    world.run_until_idle()
    assert server.acks_received == 1


def test_unknown_service_produces_error_result(world):
    world.add_server("echo")
    client = world.add_host("m", world.cells[0])
    p = client.request("no-such-service", 1)
    world.run_until_idle()
    assert p.done
    assert "error" in p.result


# -- subscription registry -------------------------------------------------------

def test_subscription_registry_notify_and_close(world):
    s0 = world.station(world.cells[0])
    server = world.add_server("echo")
    registry = SubscriptionRegistry(server.node_id, world.wired)
    ref = ProxyRef(mss=s0.node_id, proxy_id=ProxyId("px"))
    registry.open(RequestId("sub1"), ref, {"topic": "t"})
    assert registry.notify(RequestId("sub1"), "hello") is True
    assert registry.notify(RequestId("ghost"), "x") is False
    assert len(registry) == 1
    assert registry.close(RequestId("sub1"), "bye") is True
    assert registry.close(RequestId("sub1")) is False
    world.run_until_idle()
    # The messages went to a nonexistent proxy: counted, not fatal.
    assert world.metrics.count("stale_proxy_messages") == 2


def test_subscription_notify_all_filters_by_params(world):
    server = world.add_server("echo")
    registry = SubscriptionRegistry(server.node_id, world.wired)
    s0 = world.station(world.cells[0])
    ref = ProxyRef(mss=s0.node_id, proxy_id=ProxyId("px"))
    registry.open(RequestId("a"), ref, {"region": "r1"})
    registry.open(RequestId("b"), ref, {"region": "r2"})
    assert registry.notify_all("x", region="r1") == 1
    assert registry.notify_all("x") == 2
    world.run_until_idle()


# -- group multicast ----------------------------------------------------------------

def _join_group(client, group="g"):
    return client.subscribe("groups", {"group": group})


def test_mcast_reaches_all_members(world):
    world.add_server("groups", GroupServer)
    a = world.add_host("a", world.cells[0])
    b = world.add_host("b", world.cells[1])
    c = world.add_host("c", world.cells[2])
    sub_a, sub_b = _join_group(a), _join_group(b)
    world.run(until=1.0)
    p = c.request("groups", {"op": "mcast", "group": "g", "data": "news"})
    world.run(until=2.0)
    assert p.done
    assert p.result["members"] == 2
    assert any(n.get("data") == "news" for n in sub_a.notifications)
    assert any(n.get("data") == "news" for n in sub_b.notifications)


def test_join_confirmation_is_first_notification(world):
    world.add_server("groups", GroupServer)
    a = world.add_host("a", world.cells[0])
    sub = _join_group(a)
    world.run(until=1.0)
    assert sub.notifications and sub.notifications[0] == {"joined": "g"}


def test_member_in_other_cell_receives_reliably(world):
    """A member that migrated and slept still gets the multicast."""
    world.add_server("groups", GroupServer)
    a = world.add_host("a", world.cells[0])
    b = world.add_host("b", world.cells[1])
    sub_a = _join_group(a)
    world.run(until=1.0)
    host_a = world.hosts["a"]
    host_a.deactivate()
    p = b.request("groups", {"op": "mcast", "group": "g", "data": "wake-up"})
    world.run(until=2.0)
    assert p.done
    assert not any(n.get("data") == "wake-up" for n in sub_a.notifications)
    host_a.activate()
    host_a.migrate_to(world.cells[2])
    world.run(until=4.0)
    assert any(n.get("data") == "wake-up" for n in sub_a.notifications)
    world.run_until_idle()


def test_leave_group_ends_subscription(world):
    world.add_server("groups", GroupServer)
    a = world.add_host("a", world.cells[0])
    sub = _join_group(a)
    world.run(until=1.0)
    p = a.request("groups", {"op": "leave", "group": "g",
                             "member": str(sub.request_id)})
    world.run_until_idle()
    assert p.done and p.result["ok"] is True
    assert not sub.active
    b = world.add_host("b", world.cells[0])
    world.run(until=world.sim.now + 1.0)
    p2 = b.request("groups", {"op": "mcast", "group": "g", "data": "x"})
    world.run_until_idle()
    assert p2.result["members"] == 0


def test_unknown_group_operation(world):
    world.add_server("groups", GroupServer)
    a = world.add_host("a", world.cells[0])
    p = a.request("groups", {"op": "frobnicate"})
    world.run_until_idle()
    assert "error" in p.result
