"""MSS crash/restart exploration.

The paper assumes MSSs never fail (assumption 2).  These tests break
that assumption on purpose and check what the recovery extensions
(registration nacks, proxy-gone bounces, client retries) can absorb.
"""

from __future__ import annotations

import pytest

from repro.net.latency import ConstantLatency
from repro.servers.echo import EchoServer, ManualServer

from tests.conftest import make_world


def test_crash_loses_registration_and_nack_recovers():
    world = make_world()
    world.add_server("echo")
    client = world.add_host("m", world.cells[0], retry_interval=2.0)
    host = world.hosts["m"]
    world.run(until=1.0)
    assert host.registered

    station = world.station(world.cells[0])
    station.crash_and_restart()
    assert host.node_id not in station.local_mhs
    assert host.registered  # the MH has no idea yet

    # The next request is dropped, nacked, re-registered, retried, served.
    p = client.request("echo", "after-crash")
    world.run(until=20.0)
    assert p.done and p.result == "after-crash"
    assert world.metrics.count("registration_nacks") >= 1
    assert world.metrics.count("mh_reregistrations") >= 1
    assert host.node_id in station.local_mhs
    world.run_until_idle()


def test_crash_of_proxy_host_recovered_by_retry():
    """The proxy (and its pending request) dies with its MSS; the client
    retry builds a fresh proxy and the request completes."""
    world = make_world()
    server = world.add_server("manual", ManualServer)
    client = world.add_host("m", world.cells[0], retry_interval=3.0)
    host = world.hosts["m"]
    p = client.request("manual", "x")
    world.run(until=1.0)
    # Move away so the proxy (at s0) and the respMss (s1) differ.
    host.migrate_to(world.cells[1])
    world.run(until=2.0)
    world.station(world.cells[0]).crash_and_restart()
    # The original server-side work still answers, but to a dead proxy.
    server.release(p.request_id, "lost")
    world.run(until=30.0)
    # A retry re-drove the request through proxy-gone recovery: the
    # dangling pref was cleared, a fresh proxy re-issued the request, and
    # it is waiting at the (manual) server again.
    assert world.metrics.count("stale_proxy_messages") >= 1
    assert world.metrics.count("prefs_cleared_dangling") >= 1
    assert p.request_id in server.held
    server.release(p.request_id, "recovered")
    world.run(until=60.0)
    assert p.done and p.result == "recovered"


def test_crash_respmss_with_colocated_proxy():
    world = make_world()
    server = world.add_server("manual", ManualServer)
    client = world.add_host("m", world.cells[0], retry_interval=3.0)
    p = client.request("manual", "y")
    world.run(until=1.0)
    world.station(world.cells[0]).crash_and_restart()
    world.run(until=30.0)
    server.release(p.request_id, "answer")
    world.run(until=60.0)
    assert p.done
    world.run_until_idle()


def test_unaffected_hosts_keep_working_through_peer_crash():
    world = make_world()
    world.add_server("echo")
    a = world.add_host("a", world.cells[0], retry_interval=2.0)
    b = world.add_host("b", world.cells[2], retry_interval=2.0)
    world.run(until=1.0)
    world.station(world.cells[0]).crash_and_restart()
    pa = a.request("echo", 1)
    pb = b.request("echo", 2)
    world.run(until=20.0)
    assert pa.done and pb.done
    world.run_until_idle()


def test_nack_not_sent_during_legitimate_handoff():
    """The nack must not fire for the transient unknown-MH window of a
    normal hand-off (the registration is already on its way)."""
    world = make_world()
    world.add_server("slow", EchoServer, service_time=ConstantLatency(2.0))
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    world.sim.schedule(0.1, client.request, "slow", 1)
    world.sim.schedule(0.5, host.migrate_to, world.cells[1])
    world.run_until_idle()
    assert world.metrics.count("registration_nacks") == 0
