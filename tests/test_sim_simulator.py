"""Tests for the discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim import Simulator


def test_events_fire_in_time_order(sim):
    out = []
    sim.schedule(2.0, out.append, "late")
    sim.schedule(1.0, out.append, "early")
    sim.schedule(3.0, out.append, "latest")
    sim.run()
    assert out == ["early", "late", "latest"]


def test_ties_break_by_scheduling_order(sim):
    out = []
    for i in range(5):
        sim.schedule(1.0, out.append, i)
    sim.run()
    assert out == [0, 1, 2, 3, 4]


def test_clock_advances_to_fired_event_time(sim):
    sim.schedule(1.5, lambda: None)
    sim.run()
    assert sim.now == 1.5


def test_run_until_limits_and_advances_clock(sim):
    out = []
    sim.schedule(1.0, out.append, "a")
    sim.schedule(5.0, out.append, "b")
    sim.run(until=2.0)
    assert out == ["a"]
    assert sim.now == 2.0
    sim.run()
    assert out == ["a", "b"]


def test_event_cap_does_not_advance_clock_past_queued_events(sim):
    # Regression: run(until=T, max_events=N) used to jump the clock to T
    # even when the cap stopped the run with earlier events still queued,
    # so the next run() moved time backwards.
    times = []
    for t in (1.0, 2.0, 3.0):
        sim.schedule(t, times.append, t)
    sim.run(until=10.0, max_events=1)
    assert times == [1.0]
    assert sim.now == 1.0  # not 10.0: events at 2.0 and 3.0 are still due
    sim.run(until=10.0)
    assert times == [1.0, 2.0, 3.0]
    assert sim.now == 10.0


def test_event_cap_with_only_cancelled_events_left_advances(sim):
    sim.schedule(1.0, lambda: None)
    leftover = sim.schedule(2.0, lambda: None)
    leftover.cancel()
    sim.run(until=5.0, max_events=1)
    assert sim.now == 5.0  # nothing live remains at or before `until`


def test_cancelled_tombstones_are_compacted(sim):
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(200)]
    for event in events[:150]:
        event.cancel()
    assert sim.pending_events == 200
    sim.schedule(300.0, lambda: None)  # triggers the lazy compaction
    assert sim.pending_events == 51
    sim.run()
    assert sim.events_executed == 51


def test_compaction_during_run_keeps_order(sim):
    out = []

    def burst():
        events = [sim.schedule(50.0 + i, out.append, -1) for i in range(200)]
        for event in events:
            event.cancel()
        sim.schedule(5.0, out.append, "mid")  # compacts mid-run

    sim.schedule(1.0, burst)
    sim.schedule(10.0, out.append, "late")
    sim.run()
    assert out == ["mid", "late"]


def test_schedule_relative_from_within_event(sim):
    out = []

    def first():
        sim.schedule(1.0, lambda: out.append(sim.now))

    sim.schedule(1.0, first)
    sim.run()
    assert out == [2.0]


def test_negative_delay_rejected(sim):
    with pytest.raises(SchedulingError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected(sim):
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.schedule_at(1.0, lambda: None)


def test_non_finite_time_rejected(sim):
    with pytest.raises(SchedulingError):
        sim.schedule_at(float("inf"), lambda: None)
    with pytest.raises(SchedulingError):
        sim.schedule_at(float("nan"), lambda: None)


def test_cancelled_events_do_not_fire(sim):
    out = []
    event = sim.schedule(1.0, out.append, "cancelled")
    sim.schedule(2.0, out.append, "kept")
    event.cancel()
    sim.run()
    assert out == ["kept"]


def test_stop_halts_processing(sim):
    out = []
    sim.schedule(1.0, sim.stop)
    sim.schedule(2.0, out.append, "never")
    sim.run()
    assert out == []
    assert sim.now == 1.0


def test_max_events_bound(sim):
    out = []
    for i in range(10):
        sim.schedule(float(i + 1), out.append, i)
    sim.run(max_events=3)
    assert out == [0, 1, 2]


def test_run_until_idle_raises_on_livelock(sim):
    def respawn():
        sim.schedule(1.0, respawn)

    sim.schedule(1.0, respawn)
    with pytest.raises(SimulationError):
        sim.run_until_idle(max_events=100)


def test_reentrant_run_rejected(sim):
    def inner():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, inner)
    sim.run()


def test_peek_next_time_skips_cancelled(sim):
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    e1.cancel()
    assert sim.peek_next_time() == 2.0


def test_events_executed_counter(sim):
    for i in range(4):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_executed == 4


def test_zero_delay_event_runs_at_same_time(sim):
    out = []

    def outer():
        sim.schedule(0.0, lambda: out.append(sim.now))

    sim.schedule(1.0, outer)
    sim.run()
    assert out == [1.0]
