"""Tests for distance-proportional wired latency."""

from __future__ import annotations

import pytest

from repro.net.latency import ConstantLatency
from repro.net.wired import WiredNetwork
from repro.servers.echo import EchoServer
from repro.sim import Simulator
from repro.types import NodeId

from tests.conftest import make_world
from tests.test_net_wired_wireless import _Ping, _StaticNode


def test_pairwise_delay_added(sim):
    def delay(src: NodeId, dst: NodeId) -> float:
        return 0.5 if (src, dst) == ("a", "b") else 0.0

    net = WiredNetwork(sim, latency=ConstantLatency(0.01),
                       pairwise_delay=delay)
    a, b = _StaticNode("a"), _StaticNode("b")
    net.attach(a)
    net.attach(b)
    net.send(a.node_id, b.node_id, _Ping())
    sim.run()
    assert sim.now == pytest.approx(0.51)
    net.send(b.node_id, a.node_id, _Ping())
    sim.run()
    assert sim.now == pytest.approx(0.52)  # reverse direction: no extra


def test_world_distance_delay_between_stations():
    world = make_world(n_cells=5, wired_distance_delay=0.1)
    s0 = world.station(world.cells[0]).node_id
    s4 = world.station(world.cells[4]).node_id
    # Line topology: cells at x = 0..4.
    assert world._distance_delay(s0, s4) == pytest.approx(0.4)
    assert world._distance_delay(s0, s0) == 0.0


def test_world_servers_sit_at_centroid():
    world = make_world(n_cells=5, wired_distance_delay=0.1)
    server = world.add_server("echo")
    s0 = world.station(world.cells[0]).node_id
    # Centroid of x = 0..4 is 2.0.
    assert world._distance_delay(s0, server.node_id) == pytest.approx(0.2)


def test_request_latency_scales_with_distance():
    def latency_from(cell_index):
        world = make_world(n_cells=9, wired_distance_delay=0.05)
        world.add_server("echo", EchoServer,
                         service_time=ConstantLatency(0.01))
        client = world.add_host("m", world.cells[cell_index])
        world.run(until=1.0)
        p = client.request("echo", 1)
        world.run_until_idle()
        return p.latency

    # The proxy is local either way; only the proxy<->server legs differ.
    center = latency_from(4)   # at the centroid
    edge = latency_from(0)     # 4 units from the centroid
    assert edge > center + 0.3  # 2 legs x 4 units x 0.05
