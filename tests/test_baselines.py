"""Tests for the three baselines: direct, Mobile-IP-style, I-TCP-style."""

from __future__ import annotations

import pytest

from repro.baselines.direct import DirectDeliveryMss
from repro.baselines.itcp_like import ItcpLikeMss, MhImage, StoredResult
from repro.baselines.mobile_ip import mobile_ip_config
from repro.config import WorldConfig
from repro.net.latency import ConstantLatency
from repro.servers.echo import EchoServer, ManualServer
from repro.world import World

from tests.conftest import make_world


def make_direct_world(**overrides):
    world = make_world(**overrides)
    return World(world.config, mss_class=DirectDeliveryMss)


def make_itcp_world(**overrides):
    world = make_world(**overrides)
    return World(world.config, mss_class=ItcpLikeMss)


# -- direct ----------------------------------------------------------------------

def test_direct_delivers_to_stationary_host():
    world = make_direct_world()
    world.add_server("echo")
    client = world.add_host("m", world.cells[0])
    p = client.request("echo", 1)
    world.run_until_idle()
    assert p.done and p.result == 1
    assert world.live_proxy_count() == 0  # no proxies at all


def test_direct_loses_result_on_migration():
    world = make_direct_world()
    server = world.add_server("manual", ManualServer)
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    p = client.request("manual", 1)
    world.run(until=0.5)
    host.migrate_to(world.cells[1])
    world.run(until=1.0)
    server.release(p.request_id)
    world.run_until_idle()
    assert not p.done
    assert world.metrics.count("direct_results_lost") == 1


def test_direct_loses_result_while_inactive():
    world = make_direct_world()
    server = world.add_server("manual", ManualServer)
    client = world.add_host("m", world.cells[0])
    p = client.request("manual", 1)
    world.run(until=0.5)
    world.hosts["m"].deactivate()
    server.release(p.request_id)
    world.run(until=1.0)
    world.hosts["m"].activate()
    world.run_until_idle()
    assert not p.done  # nothing stored, nothing re-sent


# -- Mobile-IP style ---------------------------------------------------------------

def test_mobile_ip_config_derivation():
    cfg = mobile_ip_config(WorldConfig(n_cells=4))
    assert cfg.placement == "home"
    assert cfg.persistent_proxies is True
    assert cfg.n_cells == 4


def test_mobile_ip_rendezvous_stays_home():
    world = World(mobile_ip_config(make_world().config))
    world.add_server("echo")
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    world.run(until=0.5)
    for cell in (world.cells[1], world.cells[2]):
        host.migrate_to(cell)
        world.run(until=world.sim.now + 1.0)
        p = client.request("echo", cell)
        world.run(until=world.sim.now + 2.0)
        assert p.done
    home = world.station(world.cells[0])
    assert len(home.proxies) == 1  # all traffic rendezvoused at home
    assert world.metrics.count("proxies_deleted") == 0


# -- I-TCP style -------------------------------------------------------------------

def test_itcp_delivers_and_stores_at_respmss():
    world = make_itcp_world()
    world.add_server("echo")
    client = world.add_host("m", world.cells[0])
    p = client.request("echo", 5)
    world.run_until_idle()
    assert p.done and p.result == 5
    station = world.stations[world.cells[0]]
    image = station.images.get(world.hosts["m"].node_id)
    assert image is not None and image.unacked_results == {}


def test_itcp_redelivers_after_migration():
    world = make_itcp_world()
    server = world.add_server("manual", ManualServer)
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    host.ack_delay = 5.0  # keep the result unacknowledged across the hop
    p = client.request("manual", "data")
    world.run(until=0.5)
    server.release(p.request_id)
    world.run(until=0.6)   # delivered once, ack still pending
    host.migrate_to(world.cells[1])
    world.run_until_idle()
    assert p.done
    assert world.metrics.count("itcp_redeliveries") >= 1


def test_itcp_handoff_ships_image_bytes():
    world = make_itcp_world()
    server = world.add_server("manual", ManualServer)
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    host.ack_delay = 5.0
    p = client.request("manual", 1)
    world.run(until=0.5)
    server.release(p.request_id, "R" * 2000)
    world.run(until=0.6)
    host.migrate_to(world.cells[1])
    world.run_until_idle()
    assert p.done
    assert world.monitor.bytes_of("deregack") > 2000


def test_itcp_in_flight_reply_chases_via_forwarding_pointer():
    world = make_itcp_world()
    server = world.add_server("manual", ManualServer)
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    p = client.request("manual", 1)
    world.run(until=0.5)
    host.migrate_to(world.cells[1])
    world.run(until=1.0)   # handoff done; reply not yet sent
    server.release(p.request_id, "late")
    world.run_until_idle()
    assert p.done and p.result == "late"
    assert world.metrics.count("itcp_results_chased") >= 1
    s0 = world.stations[world.cells[0]]
    assert host.node_id in s0.forwarding_pointers  # the residue


def test_itcp_image_size_model():
    image = MhImage()
    assert image.size_bytes() == 0
    image.pending_requests["r1"] = "x" * 100
    image.unacked_results["r2"] = StoredResult(
        request_id="r2", delivery_id=1, payload="y" * 50)
    assert image.size_bytes() == (16 + 100) + (16 + 50)
