"""Tests for the experiment CLI."""

from __future__ import annotations

import pytest

from repro.experiments.cli import DESCRIPTIONS, EXPERIMENTS, main


def test_every_experiment_has_a_description():
    assert set(EXPERIMENTS) == set(DESCRIPTIONS)


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for exp_id in EXPERIMENTS:
        assert exp_id in out


def test_run_single_experiment(capsys):
    assert main(["run", "an4"]) == 0
    out = capsys.readouterr().out
    assert "AN4" in out
    assert "regenerated" in out


def test_run_writes_output_files(tmp_path, capsys):
    assert main(["run", "fig4", "--out", str(tmp_path)]) == 0
    written = tmp_path / "fig4.txt"
    assert written.exists()
    assert "del-pref" in written.read_text()


def test_unknown_id_fails(capsys):
    assert main(["run", "an99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_report_subcommand(tmp_path, capsys):
    out = tmp_path / "mini.md"
    assert main(["report", "fig3", "an4", "--out", str(out)]) == 0
    body = out.read_text()
    assert body.startswith("# RDP reproduction report")
    assert "## fig3" in body and "## an4" in body
    assert "FIG3" in body and "AN4" in body


def test_bench_smoke_writes_schema_and_is_deterministic(tmp_path, capsys):
    import json

    first = tmp_path / "one.json"
    second = tmp_path / "two.json"
    assert main(["bench", "--preset", "smoke", "--out", str(first)]) == 0
    summary = capsys.readouterr().out
    assert "bench[smoke]" in summary and str(first) in summary
    assert main(["bench", "--preset", "smoke", "--out", str(second),
                 "--quiet"]) == 0
    one = json.loads(first.read_text())
    two = json.loads(second.read_text())
    assert set(one) == {"schema", "scenario", "determinism", "timing"}
    det = one["determinism"]
    assert det["events"] > 0 and det["messages"] > 0
    assert det["answered"] == det["queries"] > 0
    for key in ("wall_seconds", "events_per_second", "messages_per_second",
                "peak_rss_kb"):
        assert key in one["timing"]
    one.pop("timing")
    two.pop("timing")
    assert one == two  # the non-timing sections must be reproducible
