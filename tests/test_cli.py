"""Tests for the experiment CLI."""

from __future__ import annotations

import pytest

from repro.experiments.cli import DESCRIPTIONS, EXPERIMENTS, main


def test_every_experiment_has_a_description():
    assert set(EXPERIMENTS) == set(DESCRIPTIONS)


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for exp_id in EXPERIMENTS:
        assert exp_id in out


def test_run_single_experiment(capsys):
    assert main(["run", "an4"]) == 0
    out = capsys.readouterr().out
    assert "AN4" in out
    assert "regenerated" in out


def test_run_writes_output_files(tmp_path, capsys):
    assert main(["run", "fig4", "--out", str(tmp_path)]) == 0
    written = tmp_path / "fig4.txt"
    assert written.exists()
    assert "del-pref" in written.read_text()


def test_unknown_id_fails(capsys):
    assert main(["run", "an99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_report_subcommand(tmp_path, capsys):
    out = tmp_path / "mini.md"
    assert main(["report", "fig3", "an4", "--out", str(out)]) == 0
    body = out.read_text()
    assert body.startswith("# RDP reproduction report")
    assert "## fig3" in body and "## an4" in body
    assert "FIG3" in body and "AN4" in body
