"""Tests for platoon (group) mobility."""

from __future__ import annotations

import random

from repro.mobility.cellmap import grid_topology, line_topology
from repro.mobility.models import FixedResidence, FixedRoute, PlatoonMobility
from repro.mobility.driver import MobilityDriver
from repro.servers.echo import EchoServer
from repro.net.latency import ConstantLatency
from repro.types import CellId

from tests.conftest import make_world


class _Leader:
    def __init__(self, cell: str) -> None:
        self.current_cell = CellId(cell)


def test_follower_steps_toward_leader():
    cmap = line_topology(5)
    leader = _Leader("cell4")
    model = PlatoonMobility(cmap, leader)
    rng = random.Random(0)
    assert model.next_cell(CellId("cell0"), rng) == "cell1"
    assert model.next_cell(CellId("cell3"), rng) == "cell4"


def test_follower_stays_when_colocated():
    cmap = line_topology(3)
    leader = _Leader("cell1")
    model = PlatoonMobility(cmap, leader)
    assert model.next_cell(CellId("cell1"), random.Random(0)) is None


def test_follower_handles_leaderless_state():
    cmap = line_topology(3)
    leader = _Leader("cell0")
    leader.current_cell = None
    model = PlatoonMobility(cmap, leader)
    assert model.next_cell(CellId("cell2"), random.Random(0)) is None


def test_platoon_converges_on_grid():
    cmap = grid_topology(4, 4)
    leader = _Leader("cell3_3")
    model = PlatoonMobility(cmap, leader)
    rng = random.Random(1)
    cell = CellId("cell0_0")
    for _ in range(10):
        nxt = model.next_cell(cell, rng)
        if nxt is None:
            break
        cell = nxt
    assert cell == "cell3_3"


def test_platoon_end_to_end_with_rdp():
    """A staff car (leader) drives a fixed route; a colleague's device
    follows, receiving a slow result mid-convoy."""
    world = make_world(n_cells=5)
    world.add_server("slow", EchoServer, service_time=ConstantLatency(3.0))
    leader_client = world.add_host("leader", world.cells[0])
    follower_client = world.add_host("follower", world.cells[0])
    leader = world.hosts["leader"]
    follower = world.hosts["follower"]

    route = FixedRoute([CellId(c) for c in world.cells])
    leader_driver = MobilityDriver(world.sim, leader, route,
                                   FixedResidence(1.0),
                                   world.mobility_rng("leader"))
    follower_driver = MobilityDriver(
        world.sim, follower, PlatoonMobility(world.cell_map, leader),
        FixedResidence(1.0), world.mobility_rng("follower"))
    world.drivers.extend([leader_driver, follower_driver])
    leader_driver.start()
    follower_driver.start()

    p = follower_client.request("slow", "convoy")
    world.run(until=8.0)
    world.run_until_idle()
    assert p.done
    # The follower trailed the leader to the end of the line.
    assert follower.current_cell == world.cells[-1]
    assert world.metrics.count("handoffs_completed") >= 6
