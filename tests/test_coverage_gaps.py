"""Targeted tests for remaining small surfaces: harness tables, metric
registry details, sequence filters, MSS edge handlers, QRPC states, and
a cross-feature integration (ordered multicast + proxy migration)."""

from __future__ import annotations

import pytest

from repro.analysis.metrics import MetricsRegistry
from repro.analysis.sequence import extract_chart
from repro.experiments.harness import Table, dump_tables
from repro.hosts.qrpc import QueuedRpcClient
from repro.net.latency import ConstantLatency
from repro.servers.echo import EchoServer
from repro.servers.ordered_multicast import OrderedGroupServer, join_ordered_group
from repro.sim import TraceRecorder
from repro.types import MhState, NodeId

from tests.conftest import make_world


# -- harness ------------------------------------------------------------------

def test_table_csv_rendering():
    table = Table(title="T", columns=["name", "value"])
    table.add_row("plain", 1.23456789)
    table.add_row("with,comma", 'say "hi"')
    csv = table.to_csv()
    lines = csv.splitlines()
    assert lines[0] == "name,value"
    assert lines[1] == "plain,1.23457"
    assert lines[2] == '"with,comma","say ""hi"""'


def test_dump_tables_joins():
    t1 = Table(title="A", columns=["x"])
    t2 = Table(title="B", columns=["y"])
    text = dump_tables([t1, t2])
    assert "A" in text and "B" in text and "\n\n" in text


# -- metrics ------------------------------------------------------------------

def test_metrics_series_and_per_node():
    metrics = MetricsRegistry()
    metrics.incr("hits", node="n1")
    metrics.incr("hits", amount=2, node="n2")
    metrics.observe("lat", 1.0)
    metrics.observe("lat", 3.0)
    assert metrics.count("hits") == 3
    assert metrics.node_count("n1", "hits") == 1
    assert metrics.per_node("hits") == {"n1": 1, "n2": 2}
    assert metrics.mean("lat") == 2.0
    assert metrics.mean("missing") == 0.0
    assert metrics.samples("lat") == [1.0, 3.0]
    snap = metrics.snapshot()
    assert snap["hits"] == 3
    metrics.clear()
    assert metrics.count("hits") == 0


# -- sequence filters --------------------------------------------------------------

def test_extract_chart_mh_filter():
    rec = TraceRecorder()
    rec.record(1.0, "send", "mss:a", msg="dereg", dst="mss:b",
               detail="dereg(mh:x,#1)")
    rec.record(2.0, "send", "mss:a", msg="dereg", dst="mss:b",
               detail="dereg(mh:y,#1)")
    rec.record(3.0, "send", "mh:x", msg="request", dst="mss:a",
               detail="request(r)")
    chart = extract_chart(rec, mh="mh:x")
    assert len(chart) == 2  # the dereg mentioning mh:x + the uplink from mh:x


# -- MSS edge handlers ---------------------------------------------------------------

def test_leave_with_pending_proxy_counted(world):
    from repro.servers.echo import ManualServer

    world.add_server("manual", ManualServer)
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    client.request("manual", 1)
    world.run(until=1.0)
    # Force the violation: bypass the client-side guard.
    from repro.core.protocol import LeaveMsg
    world.wireless.uplink(host, LeaveMsg(mh=host.node_id))
    world.run(until=2.0)
    assert world.metrics.count("mh_left_with_pending") == 1


def test_unhandled_wired_message_counted(world):
    from repro.core.protocol import ServerAckMsg

    station = world.station(world.cells[0])
    server = world.add_server("echo")
    # A server-bound message delivered to an MSS has no handler there.
    world.wired.send(server.node_id, station.node_id,
                     ServerAckMsg(request_id="r1"))
    world.run_until_idle()
    assert world.metrics.count("mss_unhandled_messages") == 1


def test_duplicate_join_confirms_again(world):
    world.add_host("m", world.cells[0])
    world.run_until_idle()
    host = world.hosts["m"]
    from repro.core.protocol import JoinMsg

    world.wireless.uplink(host, JoinMsg(mh=host.node_id, seq=host._reg_seq))
    world.run_until_idle()
    assert host.registered  # re-confirmed, no state change
    station = world.station(world.cells[0])
    assert host.node_id in station.local_mhs


def test_inbox_custom_priority_fn(sim):
    from repro.core.protocol import AckMsg, RequestMsg
    from repro.stations.inbox import Inbox
    from repro.types import RequestId

    handled = []
    # Invert the default: requests beat acks.
    inbox = Inbox(sim, lambda m: handled.append(m.kind), proc_delay=0.1,
                  priority_fn=lambda m: 0 if m.kind == "request" else 1)
    blocker = AckMsg(mh=NodeId("mh:m"), request_id=RequestId("r0"), delivery_id=0)
    inbox.push(blocker)
    inbox.push(AckMsg(mh=NodeId("mh:m"), request_id=RequestId("r1"), delivery_id=1))
    inbox.push(RequestMsg(mh=NodeId("mh:m"), request_id=RequestId("r2"), service="s"))
    sim.run()
    assert handled == ["ack", "request", "ack"]


# -- QRPC states -----------------------------------------------------------------------

def test_qrpc_outbox_skips_completed(world):
    world.add_server("echo")
    client = world.add_host("m", world.cells[0], join=False)
    qclient = QueuedRpcClient(client.host)
    host = client.host
    host.join(world.cells[0])
    world.run_until_idle()
    host.deactivate()
    p = qclient.request("echo", 1)
    # Simulate an out-of-band completion before the flush.
    p.completed_at = world.sim.now
    host.activate()
    world.run_until_idle()
    assert world.metrics.count("qrpc_flushed") == 0


# -- cross-feature integration -----------------------------------------------------------

def test_ordered_multicast_with_proxy_migration():
    """A roaming ordered-group member whose proxy migrates mid-stream
    still observes the exact sequence."""
    world = make_world(n_cells=8, proxy_migrate_distance=3.0)
    server = world.add_server("og", OrderedGroupServer)
    member = world.add_host("member", world.cells[0])
    sender = world.add_host("sender", world.cells[4])
    host = world.hosts["member"]
    membership = join_ordered_group(member, "og", "g")
    world.run(until=1.0)

    for i in range(7):
        sender.request("og", {"op": "omcast", "group": "g", "data": i})
        world.run(until=world.sim.now + 0.5)
        if i < 7 - 1:
            host.migrate_to(world.cells[i + 1])
            world.run(until=world.sim.now + 0.5)

    world.run(until=world.sim.now + 15.0)
    assert world.metrics.count("proxies_moved_in") >= 1
    assert world.metrics.count("subscriptions_relocated") >= 1
    assert membership.delivered == list(range(7))
    assert membership.holdback_depth == 0
