"""Tests for TIS scatter-gather route queries."""

from __future__ import annotations

import pytest

from repro.net.latency import ConstantLatency
from repro.servers.tis_network import TisNetwork

from tests.conftest import make_world


def _build(world, **kw):
    return TisNetwork(
        world.sim, world.wired, world.directory,
        partitions={"tisA": ["r1", "r2"], "tisB": ["r3"], "tisC": ["r4", "r5"]},
        overlay_edges=[("tisA", "tisB"), ("tisB", "tisC")],
        instruments=world.instruments,
        service_time=ConstantLatency(0.02),
        **kw,
    )


def test_route_all_local(world):
    tis = _build(world)
    tis.apply_external_update("r1", 2.0)
    tis.apply_external_update("r2", 7.0)
    client = world.add_host("m", world.cells[0])
    p = client.request("tis.tisA", {"op": "route", "regions": ["r1", "r2"]})
    world.run_until_idle()
    assert p.result["ok"]
    assert p.result["worst_level"] == 7.0
    assert [leg["region"] for leg in p.result["legs"]] == ["r1", "r2"]
    assert p.result["unknown"] == []


def test_route_spans_owners(world):
    tis = _build(world)
    for region, level in (("r1", 1.0), ("r3", 9.0), ("r5", 4.0)):
        tis.apply_external_update(region, level)
    client = world.add_host("m", world.cells[0])
    p = client.request("tis.tisA",
                       {"op": "route", "regions": ["r1", "r3", "r5"]})
    world.run_until_idle()
    assert p.result["ok"]
    assert p.result["worst_level"] == 9.0
    levels = [leg["level"] for leg in p.result["legs"]]
    assert levels == [1.0, 9.0, 4.0]


def test_route_unknown_leg_reported(world):
    tis = _build(world, lookup_timeout=1.0)
    tis.apply_external_update("r1", 3.0)
    client = world.add_host("m", world.cells[0])
    p = client.request("tis.tisA",
                       {"op": "route", "regions": ["r1", "atlantis"]})
    world.run_until_idle()
    assert p.result["ok"]
    assert p.result["worst_level"] == 3.0
    assert p.result["unknown"] == ["atlantis"]
    assert p.result["legs"][1] is None


def test_route_empty_rejected(world):
    _build(world)
    client = world.add_host("m", world.cells[0])
    p = client.request("tis.tisA", {"op": "route", "regions": []})
    world.run_until_idle()
    assert "error" in p.result


def test_route_uses_cache(world):
    tis = _build(world, cache_ttl=100.0)
    tis.apply_external_update("r3", 5.0)   # replicates to tisA's cache
    world.run_until_idle()
    client = world.add_host("m", world.cells[0])
    p = client.request("tis.tisA", {"op": "route", "regions": ["r3"]})
    world.run_until_idle()
    assert p.result["worst_level"] == 5.0
    assert tis.servers["tisA"].remote_lookups == 0


def test_route_while_migrating(world):
    """The aggregated answer chases the roaming client like any result."""
    tis = _build(world)
    for region, level in (("r2", 2.0), ("r4", 8.0)):
        tis.apply_external_update(region, level)
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    p = client.request("tis.tisA", {"op": "route", "regions": ["r2", "r4"]})
    world.sim.schedule(0.02, host.migrate_to, world.cells[2])
    world.run_until_idle()
    assert p.done
    assert p.result["worst_level"] == 8.0
