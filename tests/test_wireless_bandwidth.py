"""Tests for the shared-medium wireless bandwidth model."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.net.latency import ConstantLatency
from repro.net.wireless import WirelessChannel
from repro.servers.echo import EchoServer
from repro.sim import Simulator

from tests.conftest import make_world
from tests.test_net_wired_wireless import _Host, _Ping, _Station


def test_invalid_bandwidth_rejected():
    with pytest.raises(NetworkError):
        WirelessChannel(Simulator(), bandwidth_bps=0)


def test_serialization_delay_added(sim):
    chan = WirelessChannel(sim, latency=ConstantLatency(0.001),
                           bandwidth_bps=8_000)  # 1000 bytes/s
    station = _Station("mss:a", "c1")
    host = _Host("mh:h", "c1")
    chan.register_station(station)
    chan.register_host(host)
    msg = _Ping(tag="x" * 100)
    size = msg.size_bytes()
    chan.downlink(station, host.node_id, msg)
    sim.run()
    arrival = sim.now
    assert arrival == pytest.approx(0.001 + size * 8 / 8_000)


def test_medium_is_shared_per_cell(sim):
    """Two messages in the same cell serialize; different cells don't."""
    chan = WirelessChannel(sim, latency=ConstantLatency(0.0),
                           bandwidth_bps=8_000)
    s1 = _Station("mss:a", "c1")
    s2 = _Station("mss:b", "c2")
    h1 = _Host("mh:1", "c1")
    h2 = _Host("mh:2", "c1")
    h3 = _Host("mh:3", "c2")
    for s in (s1, s2):
        chan.register_station(s)
    for h in (h1, h2, h3):
        chan.register_host(h)

    msg_a, msg_b, msg_c = _Ping(tag="a"), _Ping(tag="b"), _Ping(tag="c")
    one_airtime = msg_a.size_bytes() * 8 / 8_000
    chan.downlink(s1, h1.node_id, msg_a)
    chan.downlink(s1, h2.node_id, msg_b)   # queues behind msg_a in c1
    chan.downlink(s2, h3.node_id, msg_c)   # c2: no queueing
    sim.run()
    assert h1.received and h2.received and h3.received
    # h2's message waited one full airtime behind h1's.
    assert sim.now == pytest.approx(2 * one_airtime)


def test_uplink_and_downlink_share_medium(sim):
    chan = WirelessChannel(sim, latency=ConstantLatency(0.0),
                           bandwidth_bps=8_000)
    station = _Station("mss:a", "c1")
    host = _Host("mh:h", "c1")
    chan.register_station(station)
    chan.register_host(host)
    down = _Ping(tag="down")
    up = _Ping(tag="up")
    airtime = down.size_bytes() * 8 / 8_000
    chan.downlink(station, host.node_id, down)
    chan.uplink(host, up)
    sim.run()
    assert station.received and host.received
    assert sim.now == pytest.approx(airtime + up.size_bytes() * 8 / 8_000)


def test_unlimited_bandwidth_is_default(sim):
    chan = WirelessChannel(sim, latency=ConstantLatency(0.003))
    station = _Station("mss:a", "c1")
    host = _Host("mh:h", "c1")
    chan.register_station(station)
    chan.register_host(host)
    for _ in range(5):
        chan.downlink(station, host.node_id, _Ping())
    sim.run()
    assert sim.now == pytest.approx(0.003)  # all in parallel


def test_end_to_end_with_bandwidth_limit():
    """A full RDP exchange still completes over a slow shared radio."""
    world = make_world(wireless_bandwidth_bps=64_000)
    world.add_server("echo", EchoServer, service_time=ConstantLatency(0.05))
    client = world.add_host("m", world.cells[0])
    blob = "z" * 4000
    p = client.request("echo", blob)
    world.run_until_idle()
    assert p.done and p.result == blob
    # The 4KB result at 64kbps needs >0.5s of airtime.
    assert p.latency > 0.5


def test_bandwidth_slows_large_results_more():
    def run(payload_bytes):
        world = make_world(wireless_bandwidth_bps=128_000)
        world.add_server("echo", EchoServer,
                         service_time=ConstantLatency(0.01))
        client = world.add_host("m", world.cells[0])
        p = client.request("echo", "y" * payload_bytes)
        world.run_until_idle()
        return p.latency

    assert run(16_000) > run(100) * 3
