"""Tests for the QRPC outbox and the totally-ordered multicast."""

from __future__ import annotations

import pytest

from repro.hosts.qrpc import QueuedRpcClient
from repro.servers.echo import ManualServer
from repro.servers.ordered_multicast import (
    OrderedGroupServer,
    join_ordered_group,
    leave_ordered_group,
)

from tests.conftest import make_world


def _queued_client(world, name, cell, retry=None):
    client = world.add_host(name, cell, join=False)
    host = client.host
    qclient = QueuedRpcClient(host, retry_interval=retry)
    host.join(cell)
    return qclient, host


# -- QRPC -------------------------------------------------------------------------

def test_qrpc_queues_while_inactive(world):
    world.add_server("echo")
    qclient, host = _queued_client(world, "m", world.cells[0])
    world.run_until_idle()
    host.deactivate()
    p = qclient.request("echo", "later")   # would raise on a plain client
    assert qclient.outbox_depth == 1
    assert not p.done
    world.run(until=world.sim.now + 5.0)
    assert not p.done
    host.activate()
    world.run_until_idle()
    assert p.done and p.result == "later"
    assert qclient.outbox_depth == 0
    assert world.metrics.count("qrpc_queued") == 1
    assert world.metrics.count("qrpc_flushed") == 1


def test_qrpc_sends_immediately_when_connected(world):
    world.add_server("echo")
    qclient, host = _queued_client(world, "m", world.cells[0])
    world.run_until_idle()
    p = qclient.request("echo", "now")
    world.run_until_idle()
    assert p.done
    assert world.metrics.count("qrpc_queued") == 0


def test_qrpc_flushes_in_new_cell(world):
    """Queued while asleep, transmitted after waking in another cell."""
    world.add_server("echo")
    qclient, host = _queued_client(world, "m", world.cells[0])
    world.run_until_idle()
    host.deactivate()
    p1 = qclient.request("echo", 1)
    p2 = qclient.request("echo", 2)
    host.migrate_to(world.cells[2])   # carried while off
    host.activate()
    world.run_until_idle()
    assert p1.done and p2.done
    assert host.current_cell == world.cells[2]


def test_qrpc_retry_covers_lossy_uplink():
    world = make_world(wireless_loss=0.3, seed=9)
    world.add_server("echo")
    qclient, host = _queued_client(world, "m", world.cells[0], retry=2.0)
    world.run(until=5.0)
    host.deactivate()
    p = qclient.request("echo", "x")
    host.activate()
    world.run(until=120.0)
    assert p.done
    world.run_until_idle()


# -- ordered multicast ---------------------------------------------------------------

def test_ordered_multicast_total_order(world):
    world.add_server("ogroups", OrderedGroupServer)
    a = world.add_host("a", world.cells[0])
    b = world.add_host("b", world.cells[1])
    c = world.add_host("c", world.cells[2])
    ma = join_ordered_group(a, "ogroups", "g")
    mb = join_ordered_group(b, "ogroups", "g")
    world.run(until=1.0)
    for i in range(5):
        c.request("ogroups", {"op": "omcast", "group": "g", "data": f"m{i}"})
        world.run(until=world.sim.now + 0.5)
    world.run(until=10.0)
    assert ma.delivered == [f"m{i}" for i in range(5)]
    assert mb.delivered == ma.delivered
    assert ma.holdback_depth == 0


def test_ordered_multicast_order_survives_sleep(world):
    """A sleeping member misses several multicasts; redeliveries may
    arrive out of order, but hold-back restores the sequence."""
    world.add_server("ogroups", OrderedGroupServer)
    a = world.add_host("a", world.cells[0])
    b = world.add_host("b", world.cells[1])
    ma = join_ordered_group(a, "ogroups", "g")
    world.run(until=1.0)
    world.hosts["a"].deactivate()
    for i in range(4):
        b.request("ogroups", {"op": "omcast", "group": "g", "data": i})
        world.run(until=world.sim.now + 0.3)
    world.hosts["a"].migrate_to(world.cells[2])
    world.hosts["a"].activate()
    world.run(until=20.0)
    assert ma.delivered == [0, 1, 2, 3]
    assert ma.holdback_depth == 0


def test_ordered_multicast_two_senders_one_order(world):
    world.add_server("ogroups", OrderedGroupServer)
    a = world.add_host("a", world.cells[0])
    b = world.add_host("b", world.cells[1])
    c = world.add_host("c", world.cells[2])
    ma = join_ordered_group(a, "ogroups", "g")
    mc = join_ordered_group(c, "ogroups", "g")
    world.run(until=1.0)
    # Two senders interleave; the sequencer linearizes them.
    for i in range(3):
        a.request("ogroups", {"op": "omcast", "group": "g", "data": f"a{i}"})
        b.request("ogroups", {"op": "omcast", "group": "g", "data": f"b{i}"})
        world.run(until=world.sim.now + 0.4)
    world.run(until=10.0)
    assert len(ma.delivered) == 6
    assert ma.delivered == mc.delivered  # identical total order


def test_ordered_multicast_late_joiner_gets_history(world):
    world.add_server("ogroups", OrderedGroupServer)
    a = world.add_host("a", world.cells[0])
    b = world.add_host("b", world.cells[1])
    ma = join_ordered_group(a, "ogroups", "g")
    world.run(until=1.0)
    for i in range(3):
        b.request("ogroups", {"op": "omcast", "group": "g", "data": i})
        world.run(until=world.sim.now + 0.3)
    late = world.add_host("late", world.cells[2])
    ml = join_ordered_group(late, "ogroups", "g")
    world.run(until=world.sim.now + 1.0)
    b.request("ogroups", {"op": "omcast", "group": "g", "data": 99})
    world.run(until=world.sim.now + 2.0)
    assert ml.delivered == [0, 1, 2, 99]
    assert ma.delivered == [0, 1, 2, 99]


def test_ordered_multicast_leave(world):
    world.add_server("ogroups", OrderedGroupServer)
    a = world.add_host("a", world.cells[0])
    b = world.add_host("b", world.cells[1])
    ma = join_ordered_group(a, "ogroups", "g")
    world.run(until=1.0)
    p = leave_ordered_group(a, "ogroups", ma)
    world.run(until=world.sim.now + 2.0)
    assert p.done and p.result["ok"] is True
    assert not ma.active
    p2 = b.request("ogroups", {"op": "omcast", "group": "g", "data": "x"})
    world.run_until_idle()
    assert p2.result["members"] == 0
    assert ma.delivered == []
