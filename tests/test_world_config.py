"""Tests for WorldConfig validation and World assembly."""

from __future__ import annotations

import pytest

from repro.config import LatencySpec, WorldConfig
from repro.errors import ConfigError
from repro.net.directory import DirectoryService
from repro.net.latency import (
    ConstantLatency,
    ExponentialLatency,
    NormalLatency,
    UniformLatency,
)
from repro.world import World, build_latency

from tests.conftest import make_world


def test_config_defaults_valid():
    config = WorldConfig()
    assert config.topology == "line"
    assert config.ordering == "causal"
    assert config.placement == "current"


@pytest.mark.parametrize("field,value", [
    ("topology", "mesh"),
    ("ordering", "total"),
    ("placement", "random"),
    ("n_cells", 0),
    ("wireless_loss", 1.01),
    ("wireless_loss", -0.1),
    ("proc_delay", -1.0),
])
def test_config_rejects_bad_values(field, value):
    with pytest.raises(ConfigError):
        WorldConfig(**{field: value})


def test_config_accepts_total_wireless_blackout():
    # loss == 1.0 is a legal scenario (nothing gets through the radio).
    assert WorldConfig(wireless_loss=1.0).wireless_loss == 1.0


def test_latency_spec_validation():
    with pytest.raises(ConfigError):
        LatencySpec(kind="warp")
    with pytest.raises(ConfigError):
        LatencySpec(mean=-1)


@pytest.mark.parametrize("kind,cls", [
    ("constant", ConstantLatency),
    ("uniform", UniformLatency),
    ("exponential", ExponentialLatency),
    ("normal", NormalLatency),
])
def test_build_latency_kinds(kind, cls):
    model = build_latency(LatencySpec(kind=kind, mean=0.05, spread=0.01))
    assert isinstance(model, cls)
    assert model.mean == pytest.approx(0.05, rel=0.3)


def test_world_builds_one_station_per_cell():
    world = make_world(n_cells=5)
    assert len(world.stations) == 5
    assert len(world.cells) == 5
    assert len(world.station_ids()) == 5


def test_world_grid_topology():
    world = make_world(topology="grid", grid_width=2, grid_height=3)
    assert len(world.stations) == 6


def test_world_unknown_cell_rejected():
    world = make_world()
    with pytest.raises(ConfigError):
        world.add_host("m", "atlantis")
    with pytest.raises(ConfigError):
        world.station("atlantis")


def test_world_trace_flag_disables_recording():
    world = make_world(trace=False)
    world.add_server("echo")
    client = world.add_host("m", world.cells[0])
    client.request("echo", 1)
    world.run_until_idle()
    assert len(world.recorder) == 0
    assert world.metrics.count("mh_results_delivered") == 1  # counters live


def test_world_seed_determinism():
    def run(seed):
        world = make_world(seed=seed,
                           wired_latency=LatencySpec(kind="exponential",
                                                     mean=0.02))
        world.add_server("echo")
        client = world.add_host("m", world.cells[0])
        p = client.request("echo", 1)
        world.run_until_idle()
        return p.completed_at

    assert run(1) == run(1)
    assert run(1) != run(2)


def test_directory_service():
    directory = DirectoryService()
    directory.register("a.x", "srv:1")
    directory.register("a.y", "srv:2")
    directory.register("b", "srv:3")
    assert directory.lookup("a.x") == "srv:1"
    assert directory.list("a.") == ["a.x", "a.y"]
    assert len(directory) == 3
    directory.unregister("b")
    assert not directory.contains("b")
    from repro.errors import UnknownNodeError
    with pytest.raises(UnknownNodeError):
        directory.lookup("b")


def test_run_until_idle_stops_mobility():
    from repro.mobility.models import FixedResidence, RandomNeighborWalk

    world = make_world()
    world.add_host("m", world.cells[0])
    driver = world.add_mobility("m", RandomNeighborWalk(world.cell_map),
                                FixedResidence(1.0))
    world.run(until=2.5)
    world.run_until_idle()  # would never return if mobility kept running
    assert not driver._running
