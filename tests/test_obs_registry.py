"""Unit tests for the typed metrics hub and its exporters."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.obs import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    MetricsHub,
    ScrapeProcess,
    digest,
    json_text,
    prometheus_text,
    snapshot,
)
from repro.obs.registry import NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM
from repro.sim import Simulator


# -- registry -----------------------------------------------------------------


def test_counter_family_labels_and_total():
    hub = MetricsHub()
    family = hub.counter("rdp_things_total", "things", labels=("kind",))
    family.labels("a").inc()
    family.labels("a").inc(2)
    family.labels("b").inc()
    assert family.labels("a").value == 3
    assert family.value == 4
    assert hub.counter_total("rdp_things_total") == 4
    assert hub.counter_total("rdp_missing_total") == 0


def test_counter_rejects_negative_increment():
    hub = MetricsHub()
    with pytest.raises(ConfigError):
        hub.counter("rdp_x_total").inc(-1)


def test_gauge_set_inc_dec_and_function():
    hub = MetricsHub()
    gauge = hub.gauge("rdp_depth")
    gauge.set(5)
    gauge.labels().inc(2)
    gauge.labels().dec()
    assert gauge.read() == 6
    backing = [1, 2, 3]
    gauge.set_function(lambda: float(len(backing)))
    assert gauge.read() == 3.0
    backing.append(4)
    assert gauge.read() == 4.0


def test_histogram_buckets_are_cumulative():
    hub = MetricsHub()
    family = hub.histogram("rdp_lat", buckets=(0.1, 1.0, 10.0))
    child = family.labels()
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        child.observe(value)
    assert child.cumulative() == [1, 3, 4, 5]
    assert child.total == 5
    assert child.sum == pytest.approx(56.05)


def test_histogram_track_keeps_samples():
    hub = MetricsHub()
    child = hub.histogram("rdp_s", buckets=(1.0,), track=True).labels()
    child.observe(0.5)
    child.observe(2.0)
    assert child.samples == [0.5, 2.0]


def test_histogram_rejects_bad_bounds():
    hub = MetricsHub()
    with pytest.raises(ConfigError):
        hub.histogram("rdp_bad", buckets=())
    with pytest.raises(ConfigError):
        hub.histogram("rdp_bad", buckets=(2.0, 1.0))


def test_registration_is_idempotent_for_identical_schema():
    hub = MetricsHub()
    first = hub.counter("rdp_x_total", labels=("a",))
    again = hub.counter("rdp_x_total", labels=("a",))
    assert first is again


def test_registration_conflict_raises():
    hub = MetricsHub()
    hub.counter("rdp_x_total", labels=("a",))
    with pytest.raises(ConfigError):
        hub.counter("rdp_x_total", labels=("b",))
    with pytest.raises(ConfigError):
        hub.gauge("rdp_x_total", labels=("a",))
    hub.histogram("rdp_h", buckets=(1.0, 2.0))
    with pytest.raises(ConfigError):
        hub.histogram("rdp_h", buckets=(1.0, 3.0))


def test_invalid_names_rejected():
    hub = MetricsHub()
    with pytest.raises(ConfigError):
        hub.counter("bad name")
    with pytest.raises(ConfigError):
        hub.counter("rdp_ok_total", labels=("bad label",))


def test_disabled_hub_hands_out_noop_handles():
    hub = MetricsHub(enabled=False)
    counter = hub.counter("rdp_x_total", labels=("a",))
    assert counter.labels("a") is NULL_COUNTER
    counter.labels("a").inc(5)
    assert counter.value == 0
    gauge = hub.gauge("rdp_g")
    assert gauge.labels() is NULL_GAUGE
    gauge.set_function(lambda: 9.0)
    assert gauge.read() == 0.0
    histogram = hub.histogram("rdp_h")
    assert histogram.labels() is NULL_HISTOGRAM
    histogram.observe(1.0)
    assert hub.families() == []
    assert prometheus_text(hub) == ""


def test_default_bucket_presets_are_sorted():
    assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)
    assert list(COUNT_BUCKETS) == sorted(COUNT_BUCKETS)


# -- exporters ----------------------------------------------------------------


def _filled_hub() -> MetricsHub:
    hub = MetricsHub()
    sent = hub.counter("rdp_msgs_total", "messages", labels=("net", "kind"))
    sent.labels("wired", "request").inc(3)
    sent.labels("wireless", "ack").inc(1)
    hub.gauge("rdp_live", "live things").set(2)
    lat = hub.histogram("rdp_lat", "latency", buckets=(0.1, 1.0))
    lat.labels().observe(0.0625)  # binary-exact so sums render stably
    lat.labels().observe(0.5)
    return hub


def test_prometheus_text_format():
    text = prometheus_text(_filled_hub())
    lines = text.splitlines()
    assert "# HELP rdp_msgs_total messages" in lines
    assert "# TYPE rdp_msgs_total counter" in lines
    assert 'rdp_msgs_total{net="wired",kind="request"} 3' in lines
    assert "# TYPE rdp_live gauge" in lines
    assert "rdp_live 2" in lines
    assert "# TYPE rdp_lat histogram" in lines
    assert 'rdp_lat_bucket{le="0.1"} 1' in lines
    assert 'rdp_lat_bucket{le="1"} 2' in lines
    assert 'rdp_lat_bucket{le="+Inf"} 2' in lines
    assert "rdp_lat_sum 0.5625" in lines
    assert "rdp_lat_count 2" in lines
    assert text.endswith("\n")


def test_prometheus_escapes_label_values():
    hub = MetricsHub()
    hub.counter("rdp_x_total", labels=("v",)).labels('a"b\\c\nd').inc()
    text = prometheus_text(hub)
    assert r'v="a\"b\\c\nd"' in text


def test_snapshot_shape_and_json_round_trip():
    hub = _filled_hub()
    snap = snapshot(hub, sim_time=12.5)
    assert snap["sim_time"] == 12.5
    families = snap["families"]
    assert families["rdp_msgs_total"]["type"] == "counter"
    assert families["rdp_msgs_total"]["label_names"] == ["net", "kind"]
    histogram = families["rdp_lat"]["samples"][0]
    assert histogram["count"] == 2
    assert histogram["buckets"] == {"0.1": 1, "1": 2}
    parsed = json.loads(json_text(hub, sim_time=12.5))
    assert parsed == json.loads(json.dumps(snap))


def test_exports_are_deterministic():
    assert prometheus_text(_filled_hub()) == prometheus_text(_filled_hub())
    assert json_text(_filled_hub()) == json_text(_filled_hub())


def test_digest_collapses_node_labels():
    hub = MetricsHub()
    per_node = hub.counter("rdp_load_total", labels=("node",))
    per_node.labels("s0").inc(4)
    per_node.labels("s1").inc(6)
    by_kind = hub.counter("rdp_kinds_total", labels=("net", "kind"))
    by_kind.labels("wired", "request").inc(2)
    hub.histogram("rdp_lat", buckets=(1.0,)).labels().observe(0.25)
    out = digest(hub)
    assert out["rdp_load_total"] == 10  # per-node family -> total only
    assert out["rdp_kinds_total"] == {"wired,request": 2}
    assert out["rdp_lat"] == {"count": 1, "sum": 0.25}


# -- scrape -------------------------------------------------------------------


def test_scrape_process_snapshots_on_sim_time():
    sim = Simulator()
    hub = MetricsHub()
    counter = hub.counter("rdp_ticks_total")
    scrape = ScrapeProcess(sim, hub, period=1.0)
    scrape.start()
    sim.schedule(0.5, counter.inc)
    sim.schedule(2.5, counter.inc)
    sim.run(until=3.5)
    scrape.stop()
    assert not scrape.running
    times = [snap["sim_time"] for snap in scrape.snapshots]
    assert times == [1.0, 2.0, 3.0]
    values = [
        snap["families"]["rdp_ticks_total"]["samples"][0]["value"]
        for snap in scrape.snapshots
    ]
    assert values == [1, 1, 2]


def test_scrape_rejects_bad_period():
    with pytest.raises(ConfigError):
        ScrapeProcess(Simulator(), MetricsHub(), period=0.0)
