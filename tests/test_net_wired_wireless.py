"""Tests for the wired network and the wireless channel."""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro.errors import NetworkError, UnknownNodeError
from repro.instruments import Instruments
from repro.net.latency import ConstantLatency
from repro.net.message import Message
from repro.net.wired import WiredNetwork
from repro.net.wireless import WirelessChannel
from repro.sim import Simulator
from repro.types import CellId, MhState, NodeId


@dataclass(slots=True, kw_only=True)
class _Ping(Message):
    kind: ClassVar[str] = "ping"
    tag: str = ""


class _StaticNode:
    def __init__(self, name: str) -> None:
        self.node_id = NodeId(name)
        self.received = []

    def on_wired_message(self, message: Message) -> None:
        self.received.append(message)


class _Station:
    def __init__(self, name: str, cell: str) -> None:
        self.node_id = NodeId(name)
        self.cell_id = CellId(cell)
        self.received = []

    def on_wireless_message(self, message: Message) -> None:
        self.received.append(message)


class _Host:
    def __init__(self, name: str, cell: str) -> None:
        self.node_id = NodeId(name)
        self.current_cell = CellId(cell)
        self.state = MhState.ACTIVE
        self.received = []

    def on_wireless_message(self, message: Message) -> None:
        self.received.append(message)


def _wired(sim, **kw):
    return WiredNetwork(sim, latency=ConstantLatency(0.01), **kw)


def test_wired_delivery(sim):
    net = _wired(sim)
    a, b = _StaticNode("a"), _StaticNode("b")
    net.attach(a)
    net.attach(b)
    net.send(a.node_id, b.node_id, _Ping(tag="x"))
    sim.run()
    assert [m.tag for m in b.received] == ["x"]
    assert b.received[0].src == a.node_id


def test_wired_unknown_destination(sim):
    net = _wired(sim)
    a = _StaticNode("a")
    net.attach(a)
    with pytest.raises(UnknownNodeError):
        net.send(a.node_id, NodeId("ghost"), _Ping())


def test_wired_unknown_source(sim):
    net = _wired(sim)
    a = _StaticNode("a")
    net.attach(a)
    with pytest.raises(UnknownNodeError):
        net.send(NodeId("ghost"), a.node_id, _Ping())


def test_wired_causal_default_restores_order(sim):
    """Variable latency reorders raw messages; causal mode fixes it."""
    from repro.net.latency import UniformLatency
    import random

    for ordering, expect_ordered in (("raw", False), ("causal", True)):
        sim = Simulator()
        net = WiredNetwork(sim, latency=UniformLatency(0.001, 0.2),
                           rng=random.Random(42), ordering=ordering)
        a, b = _StaticNode("a"), _StaticNode("b")
        net.attach(a)
        net.attach(b)
        for i in range(30):
            net.send(a.node_id, b.node_id, _Ping(tag=f"{i:02d}"))
        sim.run()
        tags = [m.tag for m in b.received]
        assert len(tags) == 30
        assert (tags == sorted(tags)) == expect_ordered


def test_wired_monitor_counts(sim):
    instr = Instruments()
    net = _wired(sim, monitor=instr.monitor)
    a, b = _StaticNode("a"), _StaticNode("b")
    net.attach(a)
    net.attach(b)
    net.send(a.node_id, b.node_id, _Ping())
    net.send(b.node_id, a.node_id, _Ping())
    sim.run()
    assert instr.monitor.count("ping") == 2
    assert instr.monitor.load_of(a.node_id) == 2  # one sent + one received
    assert instr.monitor.bytes_of("ping") > 0


def test_downlink_delivers_to_active_in_cell_host(sim):
    chan = WirelessChannel(sim, latency=ConstantLatency(0.005))
    station = _Station("mss:a", "c1")
    host = _Host("mh:h", "c1")
    chan.register_station(station)
    chan.register_host(host)
    chan.downlink(station, host.node_id, _Ping(tag="hello"))
    sim.run()
    assert [m.tag for m in host.received] == ["hello"]


def test_downlink_dropped_when_host_migrated(sim):
    chan = WirelessChannel(sim, latency=ConstantLatency(0.005))
    station = _Station("mss:a", "c1")
    host = _Host("mh:h", "c1")
    chan.register_station(station)
    chan.register_host(host)
    chan.downlink(station, host.node_id, _Ping())
    host.current_cell = CellId("c2")  # moves while the frame is in the air
    sim.run()
    assert host.received == []
    assert chan.monitor.drops("not_in_cell") == 1


def test_downlink_dropped_when_host_inactive(sim):
    chan = WirelessChannel(sim, latency=ConstantLatency(0.005))
    station = _Station("mss:a", "c1")
    host = _Host("mh:h", "c1")
    host.state = MhState.INACTIVE
    chan.register_station(station)
    chan.register_host(host)
    chan.downlink(station, host.node_id, _Ping())
    sim.run()
    assert host.received == []
    assert chan.monitor.drops("inactive") == 1


def test_uplink_reaches_current_cell_station(sim):
    chan = WirelessChannel(sim, latency=ConstantLatency(0.005))
    s1 = _Station("mss:a", "c1")
    s2 = _Station("mss:b", "c2")
    host = _Host("mh:h", "c2")
    chan.register_station(s1)
    chan.register_station(s2)
    chan.register_host(host)
    chan.uplink(host, _Ping(tag="up"))
    sim.run()
    assert s1.received == []
    assert [m.tag for m in s2.received] == ["up"]


def test_uplink_rejected_while_inactive(sim):
    chan = WirelessChannel(sim)
    s1 = _Station("mss:a", "c1")
    host = _Host("mh:h", "c1")
    host.state = MhState.INACTIVE
    chan.register_station(s1)
    chan.register_host(host)
    with pytest.raises(NetworkError):
        chan.uplink(host, _Ping())


def test_loss_probability_drops_messages(sim):
    import random

    chan = WirelessChannel(sim, latency=ConstantLatency(0.001),
                           loss_probability=0.5, rng=random.Random(9))
    station = _Station("mss:a", "c1")
    host = _Host("mh:h", "c1")
    chan.register_station(station)
    chan.register_host(host)
    for _ in range(200):
        chan.downlink(station, host.node_id, _Ping())
    sim.run()
    assert 50 < len(host.received) < 150
    assert chan.monitor.drops("loss") == 200 - len(host.received)


def test_invalid_loss_probability():
    with pytest.raises(NetworkError):
        WirelessChannel(Simulator(), loss_probability=1.5)


def test_unknown_cell_station_lookup(sim):
    chan = WirelessChannel(sim)
    with pytest.raises(UnknownNodeError):
        chan.station_of(CellId("nowhere"))
