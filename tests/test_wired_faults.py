"""Fault-injectable wired fabric, reliable transport and crash healing.

The paper's assumption 1 (reliable, ordered inter-MSS network) is broken
on purpose by :mod:`repro.net.faults`; :mod:`repro.net.reliable` is the
machinery that restores exactly-once wired delivery on top.  These tests
pin both layers plus the first-class MSS crash/recovery API and the
crash-healing protocol extensions (result bounce, MH paging, foreign-ack
routing).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro.config import WiredFaultSpec
from repro.errors import ConfigError
from repro.net.faults import FaultPlan
from repro.net.latency import ConstantLatency
from repro.net.message import Message
from repro.net.reliable import RetryPolicy
from repro.net.wired import WiredNetwork
from repro.net.wireless import WirelessChannel
from repro.servers.echo import ManualServer
from repro.sim import Simulator, TraceRecorder
from repro.types import CellId, MhState, NodeId, mss_id

from tests.conftest import make_world


@dataclass(slots=True, kw_only=True)
class _Ping(Message):
    kind: ClassVar[str] = "ping"
    tag: str = ""


class _StaticNode:
    def __init__(self, name: str) -> None:
        self.node_id = NodeId(name)
        self.received = []

    def on_wired_message(self, message: Message) -> None:
        self.received.append(message)


def _wired(sim, **kw):
    return WiredNetwork(sim, latency=ConstantLatency(0.01), **kw)


# -- FaultPlan unit tests ----------------------------------------------------

def test_fault_plan_validates_rates():
    rng = random.Random(0)
    with pytest.raises(ConfigError):
        FaultPlan(rng, loss=1.5)
    with pytest.raises(ConfigError):
        FaultPlan(rng, duplication=-0.1)
    with pytest.raises(ConfigError):
        FaultPlan(rng, spike=-1.0)
    with pytest.raises(ConfigError):
        FaultPlan(rng, partitions=((NodeId("a"), NodeId("b"), 5.0, 5.0),))
    plan = FaultPlan(rng, loss=0.5)
    with pytest.raises(ConfigError):
        plan.set_loss(2.0)


def test_fault_plan_validate_rejects_overlapping_partitions():
    a, b = NodeId("mss:a"), NodeId("mss:b")
    plan = FaultPlan(random.Random(0),
                     partitions=((a, b, 10.0, 20.0), (b, a, 15.0, 25.0)))
    with pytest.raises(ConfigError, match="overlapping partition windows"):
        plan.validate()  # same undirected link, windows overlap
    # Touching windows and other links are fine.
    ok = FaultPlan(random.Random(0), partitions=(
        (a, b, 10.0, 20.0), (a, b, 20.0, 25.0),
        (a, NodeId("mss:c"), 12.0, 18.0)))
    ok.validate()


def test_fault_plan_validate_exempts_dynamic_windows():
    """Mid-run cuts (the fuzzer's wired_loss/partition ops) may overlap;
    only the static spec is validated at world build time."""
    a, b = NodeId("mss:a"), NodeId("mss:b")
    plan = FaultPlan(random.Random(0), partitions=((a, b, 10.0, 20.0),))
    plan.validate()
    plan.partition(a, b, 15.0, 30.0)  # dynamic overlap: legal schedule
    assert plan.cut(a, b, 25.0)


def test_wireless_plan_validate_rejects_overlapping_blackouts():
    from repro.net.faults import WirelessFaultPlan
    plan = WirelessFaultPlan(random.Random(0), blackouts=(
        (CellId("cell0"), 5.0, 10.0), (CellId("cell0"), 8.0, 12.0)))
    with pytest.raises(ConfigError, match="overlapping blackout windows"):
        plan.validate()
    ok = WirelessFaultPlan(random.Random(0), blackouts=(
        (CellId("cell0"), 5.0, 10.0), (CellId("cell0"), 10.0, 12.0),
        (CellId("cell1"), 6.0, 9.0)))
    ok.validate()


def test_fault_window_negative_durations_rejected():
    a, b = NodeId("mss:a"), NodeId("mss:b")
    with pytest.raises(ConfigError, match="empty partition window"):
        FaultPlan(random.Random(0), partitions=((a, b, 5.0, 4.0),))
    from repro.net.faults import WirelessFaultPlan
    with pytest.raises(ConfigError, match="empty blackout window"):
        WirelessFaultPlan(random.Random(0),
                          blackouts=((CellId("cell0"), 3.0, 3.0),))


def test_world_rejects_overlapping_static_windows():
    """The world validates both static plans at build time, so a config
    typo dies loudly instead of silently double-counting windows."""
    from repro.config import WirelessFaultSpec
    with pytest.raises(ConfigError, match="overlapping partition windows"):
        make_world(wired_faults=WiredFaultSpec(partitions=(
            (mss_id("s0"), mss_id("s1"), 1.0, 5.0),
            (mss_id("s1"), mss_id("s0"), 4.0, 8.0))))
    with pytest.raises(ConfigError, match="overlapping blackout windows"):
        make_world(wireless_faults=WirelessFaultSpec(blackouts=(
            ("cell1", 1.0, 5.0), ("cell1", 2.0, 3.0))))


def test_fault_plan_partition_windows():
    a, b, c = NodeId("mss:a"), NodeId("mss:b"), NodeId("mss:c")
    plan = FaultPlan(random.Random(0), partitions=((a, b, 10.0, 20.0),))
    # Undirected, half-open window, only the named link.
    assert plan.cut(a, b, 10.0) and plan.cut(b, a, 19.999)
    assert not plan.cut(a, b, 9.999) and not plan.cut(a, b, 20.0)
    assert not plan.cut(a, c, 15.0)


def test_fault_plan_seeded_determinism():
    plan1 = FaultPlan(random.Random(7), loss=0.5)
    plan2 = FaultPlan(random.Random(7), loss=0.5)
    draws1 = [plan1.lost() for _ in range(20)]
    assert draws1 == [plan2.lost() for _ in range(20)]
    assert any(draws1) and not all(draws1)


def test_fault_plan_set_loss_retargets_midrun():
    plan = FaultPlan(random.Random(1))
    assert not plan.lost()
    plan.set_loss(1.0)
    assert plan.lost()


def test_wired_fault_spec_validation():
    with pytest.raises(ConfigError):
        WiredFaultSpec(loss=1.2)
    with pytest.raises(ConfigError):
        WiredFaultSpec(partitions=((mss_id("s0"), mss_id("s1"), 3.0, 2.0),))
    assert not WiredFaultSpec().active
    assert WiredFaultSpec(loss=0.1).active


# -- RetryPolicy -------------------------------------------------------------

def test_retry_policy_backoff_progression():
    policy = RetryPolicy(timeout=0.25, backoff=2.0, max_timeout=8.0, jitter=0.0)
    timeouts = [policy.timeout_for(n, 0.0) for n in range(1, 8)]
    assert timeouts == [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 8.0]  # capped


def test_retry_policy_jitter_stretches_deterministically():
    policy = RetryPolicy(timeout=1.0, backoff=1.0, max_timeout=4.0, jitter=0.5)
    assert policy.timeout_for(1, 0.0) == 1.0
    assert policy.timeout_for(1, 1.0) == pytest.approx(1.5)
    assert policy.timeout_for(1, 0.5) == pytest.approx(1.25)


def test_retry_policy_jitter_never_exceeds_cap():
    # Regression: the cap used to apply before jitter, so a fully
    # backed-off delay could stretch to max_timeout * (1 + jitter).
    policy = RetryPolicy(timeout=1.0, backoff=1.0, max_timeout=1.0, jitter=0.5)
    assert policy.timeout_for(1, 1.0) == 1.0
    deep = RetryPolicy(timeout=0.25, backoff=2.0, max_timeout=8.0, jitter=0.1)
    for attempt in range(1, 12):
        for draw in (0.0, 0.37, 0.999):
            assert deep.timeout_for(attempt, draw) <= deep.max_timeout
    # jittered() (the adaptive transport's path) honours the same cap.
    assert deep.jittered(8.0, 0.999) == 8.0
    assert deep.jittered(1.0, 0.5) == pytest.approx(1.05)


def test_retry_policy_validation():
    with pytest.raises(ConfigError):
        RetryPolicy(timeout=0.0)
    with pytest.raises(ConfigError):
        RetryPolicy(timeout=2.0, max_timeout=1.0)
    with pytest.raises(ConfigError):
        RetryPolicy(backoff=0.5)
    with pytest.raises(ConfigError):
        RetryPolicy(max_retries=-1)


# -- ReliableLink over a faulty fabric --------------------------------------

def test_transport_defaults_follow_faults():
    sim = Simulator()
    assert _wired(sim).transport is None
    plan = FaultPlan(random.Random(0), loss=0.2)
    assert _wired(sim, faults=plan).transport is not None
    assert _wired(sim, faults=plan, reliable=False).transport is None
    assert _wired(sim, reliable=True).transport is not None


def test_reliable_link_bridges_heavy_loss():
    sim = Simulator()
    plan = FaultPlan(random.Random(3), loss=0.5)
    net = _wired(sim, faults=plan)
    a, b = _StaticNode("mss:a"), _StaticNode("mss:b")
    net.attach(a)
    net.attach(b)
    for i in range(30):
        net.send(a.node_id, b.node_id, _Ping(tag=str(i)))
    sim.run()
    # Exactly once, in order, despite a 50% lossy wire.
    assert [m.tag for m in b.received] == [str(i) for i in range(30)]
    assert net.monitor.drops_of(net.name, reason="loss") > 0
    assert net.transport.retransmissions > 0
    assert net.transport.pending_count() == 0


def test_reliable_link_suppresses_injected_duplicates():
    sim = Simulator()
    plan = FaultPlan(random.Random(5), duplication=1.0)
    net = _wired(sim, faults=plan)
    a, b = _StaticNode("mss:a"), _StaticNode("mss:b")
    net.attach(a)
    net.attach(b)
    for i in range(10):
        net.send(a.node_id, b.node_id, _Ping(tag=str(i)))
    sim.run()
    assert [m.tag for m in b.received] == [str(i) for i in range(10)]
    assert net.dup_injected > 0
    assert net.transport.duplicates_suppressed > 0


def test_reliable_link_gives_up_after_retry_budget():
    sim = Simulator()
    a_id, b_id = NodeId("mss:a"), NodeId("mss:b")
    plan = FaultPlan(random.Random(0), partitions=((a_id, b_id, 0.0, 1e9),))
    net = _wired(sim, faults=plan,
                 retry=RetryPolicy(timeout=0.1, max_timeout=0.4, max_retries=3))
    a, b = _StaticNode(a_id), _StaticNode(b_id)
    net.attach(a)
    net.attach(b)
    net.send(a.node_id, b.node_id, _Ping(tag="doomed"))
    sim.run()
    assert b.received == []
    assert len(net.failures) == 1
    failure = net.failures[0]
    assert failure.src == a.node_id and failure.dst == b.node_id
    assert failure.attempts == 4  # 1 original + max_retries
    assert net.transport.pending_count() == 0


def test_reliable_link_bridges_node_downtime():
    """Frames toward a down node are dropped silently (no transport ack),
    so the sender keeps retransmitting and delivery completes once the
    node comes back: the fabric keeps custody across the outage."""
    sim = Simulator()
    net = _wired(sim, reliable=True,
                 retry=RetryPolicy(timeout=0.2, max_timeout=0.4, jitter=0.0))
    a, b = _StaticNode("mss:a"), _StaticNode("mss:b")
    net.attach(a)
    net.attach(b)
    net.set_down(b.node_id)
    net.send(a.node_id, b.node_id, _Ping(tag="bridged"))
    sim.run(until=1.0)
    assert b.received == []
    assert net.monitor.drops_of(net.name, reason="down") > 0
    net.set_up(b.node_id)
    sim.run()
    assert [m.tag for m in b.received] == ["bridged"]


def test_fault_free_network_has_no_transport_traffic():
    """Default construction stays a zero-overhead pass-through."""
    sim = Simulator()
    net = _wired(sim)
    a, b = _StaticNode("mss:a"), _StaticNode("mss:b")
    net.attach(a)
    net.attach(b)
    for i in range(5):
        net.send(a.node_id, b.node_id, _Ping(tag=str(i)))
    sim.run()
    assert len(b.received) == 5
    assert net.transport is None
    assert net.monitor.drops_of(net.name) == 0


def test_station_ids_lists_only_stations():
    sim = Simulator()
    net = _wired(sim)
    net.attach(_StaticNode("mss:b"))
    net.attach(_StaticNode("mss:a"))
    net.attach(_StaticNode("srv:echo"))
    assert net.station_ids() == ["mss:a", "mss:b"]


# -- wireless drop reasons (satellite: counters and trace agree) -------------

class _Station:
    def __init__(self, name: str, cell: str) -> None:
        self.node_id = NodeId(name)
        self.cell_id = CellId(cell)
        self.received = []

    def on_wireless_message(self, message: Message) -> None:
        self.received.append(message)


class _Host:
    def __init__(self, name: str, cell: str) -> None:
        self.node_id = NodeId(name)
        self.current_cell = CellId(cell)
        self.state = MhState.ACTIVE
        self.received = []

    def on_wireless_message(self, message: Message) -> None:
        self.received.append(message)


def test_every_wireless_drop_reason_counted_and_traced_once():
    """Each downlink drop reason — ``inactive``, ``not_in_cell``,
    ``loss``, plus the mid-flight ``host_inactive`` fault — shows up
    exactly once in the monitor counters AND exactly once as a trace row
    for a scenario constructed to hit each once."""
    sim = Simulator()
    recorder = TraceRecorder()
    channel = WirelessChannel(sim, latency=ConstantLatency(0.005),
                              recorder=recorder)
    station = _Station("mss:s0", "cell0")
    channel.register_station(station)
    host = _Host("mh:m", "cell0")
    channel.register_host(host)

    # 1: inactive — the host was already asleep when the frame was sent
    # (the ordinary send-to-sleeping case the proxy expects).
    host.state = MhState.INACTIVE
    channel.downlink(station, host.node_id, _Ping(tag="to-sleeper"))
    sim.run()
    host.state = MhState.ACTIVE

    # 2: not_in_cell — the host moves away mid-flight.
    channel.downlink(station, host.node_id, _Ping(tag="to-mover"))
    host.current_cell = CellId("cell1")
    sim.run()
    host.current_cell = CellId("cell0")

    # 3: loss — a total blackout (loss_probability == 1.0 is legal).
    channel.loss_probability = 1.0
    channel.downlink(station, host.node_id, _Ping(tag="to-void"))
    sim.run()
    channel.loss_probability = 0.0

    # 4: host_inactive — deliverable at send time, deactivated while the
    # frame was in the air: a distinct wireless_drop, not plain inactive.
    channel.downlink(station, host.node_id, _Ping(tag="to-dozer"))
    host.state = MhState.INACTIVE
    sim.run()
    host.state = MhState.ACTIVE

    assert host.received == []
    for reason in ("inactive", "not_in_cell", "loss"):
        assert channel.monitor.drops_of(channel.name, reason=reason) == 1, reason
        rows = [r for r in recorder.filter(kind="drop")
                if r.get("reason") == reason]
        assert len(rows) == 1, reason
    assert channel.monitor.drops_of(channel.name, reason="host_inactive") == 1
    wireless_rows = recorder.filter(kind="wireless_drop")
    assert len(wireless_rows) == 1
    assert wireless_rows[0].get("reason") == "host_inactive"
    # Nothing else was dropped, and the totals agree with the rows.
    assert channel.monitor.drops_of(channel.name) == 4
    assert len(recorder.filter(kind="drop")) == 3


def test_uplink_loss_dropped_with_reason():
    sim = Simulator()
    channel = WirelessChannel(sim, latency=ConstantLatency(0.005),
                              loss_probability=1.0)
    station = _Station("mss:s0", "cell0")
    channel.register_station(station)
    host = _Host("mh:m", "cell0")
    channel.register_host(host)
    channel.uplink(host, _Ping(tag="up"))
    sim.run()
    assert station.received == []
    assert channel.monitor.drops_of(channel.name, reason="loss") == 1


# -- first-class crash/recovery API -----------------------------------------

def test_crash_mss_accepts_cell_name_and_node_id():
    world = make_world()
    by_cell = world.crash_mss(world.cells[0])
    assert by_cell.down
    world.restart_mss(by_cell.name)
    assert not by_cell.down
    assert world.crash_mss(by_cell.name) is by_cell
    world.restart_mss(mss_id(by_cell.name))
    assert not by_cell.down
    with pytest.raises(ConfigError):
        world.crash_mss("nope")


def test_crash_wipes_volatile_state_and_restart_reregisters():
    world = make_world()
    world.add_server("echo")
    client = world.add_host("m", world.cells[0], retry_interval=2.0)
    world.run(until=1.0)
    station = world.stations[world.cells[0]]
    assert world.hosts["m"].node_id in station.local_mhs

    world.crash_mss(world.cells[0])
    assert station.local_mhs == set()
    assert station.proxies == {}
    assert len(station.prefs) == 0
    assert world.metrics.count("mss_crashes") == 1

    world.restart_mss(world.cells[0])
    p = client.request("echo", "back")
    world.run(until=20.0)
    assert p.done and p.result == "back"
    assert world.metrics.count("mss_restarts") == 1
    assert world.hosts["m"].node_id in station.local_mhs


# -- crash-healing protocol extensions --------------------------------------

def _healing_world():
    """A deterministic world with the crash-healing machinery armed
    (a fault plan with zero rates keeps the run loss-free)."""
    return make_world(wired_faults=WiredFaultSpec(loss=0.0),
                      greet_retry_interval=1.0)


def test_orphaned_proxy_healed_by_bounce_and_page():
    """An MSS crash wipes the pref the proxy depends on while the MH
    moves on: the stale forward bounces, the proxy pages, the hosting
    station answers, and the result still arrives exactly once."""
    world = _healing_world()
    server = world.add_server("manual", ManualServer)
    client = world.add_host("m", world.cells[0], retry_interval=60.0)
    host = world.hosts["m"]
    p = client.request("manual", "homework")
    world.run(until=1.0)
    # Proxy lives at s0; hand the MH off to s1 so the pref moves there.
    host.migrate_to(world.cells[1])
    world.run(until=3.0)
    # Crash s1: the pref pointing at the proxy is gone.  The MH then
    # moves to s2 and (custody chain dead) registers there.
    world.crash_mss(world.cells[1])
    world.run(until=4.0)
    world.restart_mss(world.cells[1])
    host.migrate_to(world.cells[2])
    world.run(until=8.0)
    assert host.node_id in world.stations[world.cells[2]].local_mhs
    # Now the server answers: the proxy forwards to its stale currentloc.
    server.release(p.request_id, "done")
    world.run(until=40.0)
    assert p.done and p.result == "done"
    metrics = world.metrics
    assert metrics.count("results_for_absent_mh") >= 1
    assert metrics.count("proxy_bounce_retries") >= 1
    assert metrics.count("mh_pages_sent") >= 1
    assert metrics.count("mh_page_hits") >= 1
    # The healed proxy got its ack and retired: no zombies anywhere.
    world.run_until_idle()
    assert all(not s.proxies for s in world.stations.values())


def test_del_proxy_confirm_gated_to_fault_worlds():
    """The explicit del-proxy confirmation only exists to close a race a
    crash can open; fault-free worlds keep the paper's exact piggyback
    sequence."""
    world = make_world()
    world.add_server("echo")
    client = world.add_host("m", world.cells[0])
    p = client.request("echo", "x")
    world.run(until=10.0)
    assert p.done
    assert world.metrics.count("del_proxy_confirms") == 0
    assert world.stations[world.cells[0]].config.proxy_ack_timeout is None


def test_proxy_ack_timeout_auto_enabled_with_faults():
    armed = _healing_world()
    assert armed.stations[armed.cells[0]].config.proxy_ack_timeout == 5.0
    world = make_world(wired_faults=WiredFaultSpec(loss=0.0),
                       proxy_ack_timeout=2.5)
    assert world.stations[world.cells[0]].config.proxy_ack_timeout == 2.5
