"""Tests for the RDP-backed mail application."""

from __future__ import annotations

import pytest

from repro.hosts.qrpc import QueuedRpcClient
from repro.servers.mail import MailServer

from tests.conftest import make_world


@pytest.fixture
def mail_world(world):
    server = world.add_server("mail", MailServer)
    return world, server


def test_send_and_push_to_connected_user(mail_world):
    world, server = mail_world
    alice = world.add_host("alice", world.cells[0])
    bob = world.add_host("bob", world.cells[1])
    inbox = bob.subscribe("mail", {"user": "bob"})
    world.run(until=1.0)
    p = alice.request("mail", {"op": "send", "to": "bob", "from": "alice",
                               "subject": "hi", "body": "lunch?"})
    world.run(until=2.0)
    assert p.done and p.result["ok"] and p.result["pushed"]
    assert len(inbox.notifications) == 1
    assert inbox.notifications[0]["subject"] == "hi"
    assert inbox.notifications[0]["body"] == "lunch?"


def test_backlog_pushed_on_late_subscribe(mail_world):
    world, server = mail_world
    alice = world.add_host("alice", world.cells[0])
    for i in range(3):
        alice.request("mail", {"op": "send", "to": "bob", "from": "alice",
                               "subject": f"s{i}"})
    world.run(until=1.0)
    bob = world.add_host("bob", world.cells[1])
    inbox = bob.subscribe("mail", {"user": "bob"})
    world.run(until=2.0)
    assert [n["subject"] for n in inbox.notifications] == ["s0", "s1", "s2"]


def test_mail_chases_roaming_sleeping_user(mail_world):
    world, server = mail_world
    alice = world.add_host("alice", world.cells[0])
    bob = world.add_host("bob", world.cells[1])
    inbox = bob.subscribe("mail", {"user": "bob"})
    world.run(until=1.0)
    host = world.hosts["bob"]
    host.deactivate()
    alice.request("mail", {"op": "send", "to": "bob", "from": "alice",
                           "subject": "urgent"})
    world.run(until=3.0)
    assert inbox.notifications == []
    host.migrate_to(world.cells[2])   # carried while off
    host.activate()
    world.run(until=6.0)
    assert [n["subject"] for n in inbox.notifications] == ["urgent"]


def test_list_fetch_delete(mail_world):
    world, server = mail_world
    alice = world.add_host("alice", world.cells[0])
    sent = alice.request("mail", {"op": "send", "to": "carol",
                                  "from": "alice", "subject": "x",
                                  "body": "B"})
    world.run(until=1.0)
    mail_id = sent.result["mail_id"]
    assert sent.result["pushed"] is False  # carol never connected

    listed = alice.request("mail", {"op": "list", "user": "carol"})
    world.run(until=2.0)
    assert [m["mail_id"] for m in listed.result["mail"]] == [mail_id]

    fetched = alice.request("mail", {"op": "fetch", "user": "carol",
                                     "mail_id": mail_id})
    world.run(until=3.0)
    assert fetched.result["mail"]["body"] == "B"

    deleted = alice.request("mail", {"op": "delete", "user": "carol",
                                     "mail_id": mail_id})
    world.run(until=4.0)
    assert deleted.result["ok"] is True
    relisted = alice.request("mail", {"op": "list", "user": "carol"})
    world.run_until_idle()
    assert relisted.result["mail"] == []


def test_fetch_missing_mail(mail_world):
    world, server = mail_world
    alice = world.add_host("alice", world.cells[0])
    p = alice.request("mail", {"op": "fetch", "user": "carol", "mail_id": 99})
    world.run_until_idle()
    assert "error" in p.result


def test_resubscribe_replaces_push_channel(mail_world):
    world, server = mail_world
    bob = world.add_host("bob", world.cells[0])
    first = bob.subscribe("mail", {"user": "bob"})
    world.run(until=1.0)
    second = bob.subscribe("mail", {"user": "bob"})
    world.run(until=2.0)
    assert not first.active      # closed with {"replaced": True}
    assert second.active
    alice = world.add_host("alice", world.cells[1])
    alice.request("mail", {"op": "send", "to": "bob", "from": "alice",
                           "subject": "via-second"})
    world.run(until=4.0)
    assert [n["subject"] for n in second.notifications] == ["via-second"]
    assert first.notifications == []


def test_close_inbox_on_logout(mail_world):
    world, server = mail_world
    bob = world.add_host("bob", world.cells[0])
    inbox = bob.subscribe("mail", {"user": "bob"})
    world.run(until=1.0)
    assert server.close_inbox("bob") is True
    world.run(until=2.0)
    assert not inbox.active
    assert inbox.end_payload == {"logout": True}
    assert server.close_inbox("bob") is False


def test_compose_offline_with_qrpc(mail_world):
    """The paper's portable-email vision: write on the train, send at
    the next cell."""
    world, server = mail_world
    plain = world.add_host("alice", world.cells[0], join=False)
    alice = QueuedRpcClient(plain.host)
    alice.host.join(world.cells[0])
    bob = world.add_host("bob", world.cells[1])
    inbox = bob.subscribe("mail", {"user": "bob"})
    world.run(until=1.0)

    alice.host.deactivate()
    drafts = [alice.request("mail", {"op": "send", "to": "bob",
                                     "from": "alice",
                                     "subject": f"draft{i}"})
              for i in range(3)]
    alice.host.migrate_to(world.cells[2])
    world.run(until=3.0)
    assert inbox.notifications == []
    alice.host.activate()
    world.run(until=8.0)
    assert all(d.done for d in drafts)
    assert [n["subject"] for n in inbox.notifications] == [
        "draft0", "draft1", "draft2"]
