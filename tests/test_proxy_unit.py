"""Unit tests for the Proxy object against a fake hosting MSS."""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

import pytest

from repro.core.protocol import (
    AckForwardMsg,
    DelPrefNoticeMsg,
    ForwardedRequestMsg,
    NotificationMsg,
    ResultForwardMsg,
    ServerAckMsg,
    ServerRequestMsg,
    ServerResultMsg,
    SubscriptionEndMsg,
    UpdateCurrentLocMsg,
)
from repro.core.proxy import Proxy
from repro.instruments import Instruments
from repro.sim import Simulator
from repro.types import NodeId, ProxyId, RequestId


class FakeHost:
    """Captures everything the proxy sends."""

    def __init__(self) -> None:
        self.node_id = NodeId("mss:host")
        self.sent: List[Tuple[NodeId, Any]] = []
        self.removed: List[ProxyId] = []
        self.services = {"echo": NodeId("srv:echo")}

    def proxy_wired_send(self, dst: NodeId, message: Any) -> None:
        self.sent.append((dst, message))

    def resolve_service(self, service: str) -> Optional[NodeId]:
        return self.services.get(service)

    def remove_proxy(self, proxy_id: ProxyId) -> None:
        self.removed.append(proxy_id)

    def of_kind(self, cls) -> List[Any]:
        return [m for _, m in self.sent if isinstance(m, cls)]


@pytest.fixture
def setup():
    sim = Simulator()
    host = FakeHost()
    proxy = Proxy(sim, host, NodeId("mh:m"), ProxyId("px"), Instruments())
    return sim, host, proxy


def _admit(proxy, rid: str, service: str = "echo", payload: Any = None) -> RequestId:
    request_id = RequestId(rid)
    proxy.admit_request(request_id, service, payload)
    return request_id


def _result(proxy, rid: RequestId, payload: Any = "res") -> None:
    proxy.handle_server_result(ServerResultMsg(
        request_id=rid, proxy_id=proxy.proxy_id, payload=payload))


def _ack(proxy, rid: RequestId, del_proxy: bool = False) -> None:
    fwd = [m for m in proxy.host.of_kind(ResultForwardMsg)
           if m.request_id == rid]
    delivery_id = fwd[-1].delivery_id if fwd else 0
    proxy.handle_ack_forward(AckForwardMsg(
        mh=proxy.mh, proxy_id=proxy.proxy_id, request_id=rid,
        delivery_id=delivery_id, del_proxy=del_proxy))


def test_admit_dispatches_to_server(setup):
    sim, host, proxy = setup
    rid = _admit(proxy, "r1", payload={"q": 1})
    reqs = host.of_kind(ServerRequestMsg)
    assert len(reqs) == 1
    assert reqs[0].request_id == rid
    assert reqs[0].reply_to == proxy.ref
    assert host.sent[0][0] == NodeId("srv:echo")
    assert proxy.pending_count == 1


def test_duplicate_request_ignored(setup):
    sim, host, proxy = setup
    _admit(proxy, "r1")
    _admit(proxy, "r1")
    assert len(host.of_kind(ServerRequestMsg)) == 1


def test_unknown_service_yields_error_result(setup):
    sim, host, proxy = setup
    _admit(proxy, "r1", service="ghost")
    fwd = host.of_kind(ResultForwardMsg)
    assert len(fwd) == 1
    assert "error" in fwd[0].payload


def test_result_forwarded_with_del_pref_when_sole_pending(setup):
    sim, host, proxy = setup
    rid = _admit(proxy, "r1")
    _result(proxy, rid)
    fwd = host.of_kind(ResultForwardMsg)
    assert len(fwd) == 1
    assert fwd[0].del_pref is True
    assert fwd[0].retransmission is False
    assert fwd[0].payload == "res"


def test_result_without_del_pref_when_others_pending(setup):
    sim, host, proxy = setup
    r1 = _admit(proxy, "r1")
    _admit(proxy, "r2")
    _result(proxy, r1)
    fwd = host.of_kind(ResultForwardMsg)
    assert fwd[0].del_pref is False


def test_stale_server_result_ignored(setup):
    sim, host, proxy = setup
    rid = _admit(proxy, "r1")
    _result(proxy, rid)
    _result(proxy, rid)  # duplicate from server
    assert len(host.of_kind(ResultForwardMsg)) == 1


def test_update_currentloc_resends_unacked(setup):
    sim, host, proxy = setup
    rid = _admit(proxy, "r1")
    _result(proxy, rid)
    proxy.handle_update_currentloc(UpdateCurrentLocMsg(
        mh=proxy.mh, proxy_id=proxy.proxy_id, new_mss=NodeId("mss:new")))
    fwd = host.of_kind(ResultForwardMsg)
    assert len(fwd) == 2
    assert proxy.currentloc == NodeId("mss:new")
    assert host.sent[-1][0] == NodeId("mss:new")
    assert fwd[1].retransmission is True
    assert fwd[1].delivery_id == fwd[0].delivery_id  # stable across resends


def test_update_does_not_resend_pending_without_result(setup):
    sim, host, proxy = setup
    _admit(proxy, "r1")
    proxy.handle_update_currentloc(UpdateCurrentLocMsg(
        mh=proxy.mh, proxy_id=proxy.proxy_id, new_mss=NodeId("mss:new")))
    assert host.of_kind(ResultForwardMsg) == []


def test_ack_completes_and_del_proxy_deletes(setup):
    sim, host, proxy = setup
    rid = _admit(proxy, "r1")
    _result(proxy, rid)
    _ack(proxy, rid, del_proxy=True)
    assert proxy.deleted
    assert host.removed == [proxy.proxy_id]
    assert proxy.pending_count == 0


def test_del_proxy_with_pending_requests_is_refused(setup):
    sim, host, proxy = setup
    r1 = _admit(proxy, "r1")
    _admit(proxy, "r2")
    _result(proxy, r1)
    _ack(proxy, r1, del_proxy=True)  # inconsistent: r2 still pending
    assert not proxy.deleted
    assert proxy.instr.metrics.count("proxy_del_proxy_with_pending") == 1


def test_duplicate_ack_counted_not_fatal(setup):
    sim, host, proxy = setup
    rid = _admit(proxy, "r1")
    _result(proxy, rid)
    _ack(proxy, rid)
    _ack(proxy, rid)
    assert proxy.instr.metrics.count("proxy_duplicate_acks") == 1


def test_del_pref_notice_after_ack_leaves_one_forwarded(setup):
    """Figure 4: AckB leaves only requestC pending, whose result was
    already forwarded -> special del-pref message."""
    sim, host, proxy = setup
    rb = _admit(proxy, "rB")
    rc = _admit(proxy, "rC")
    _result(proxy, rb)
    _result(proxy, rc)   # forwarded while {B, C} pending -> no del-pref
    assert all(not m.del_pref for m in host.of_kind(ResultForwardMsg))
    _ack(proxy, rb)
    notices = host.of_kind(DelPrefNoticeMsg)
    assert len(notices) == 1
    assert notices[0].proxy_ref == proxy.ref


def test_no_notice_when_last_pending_result_not_arrived(setup):
    sim, host, proxy = setup
    rb = _admit(proxy, "rB")
    _admit(proxy, "rC")
    _result(proxy, rb)
    _ack(proxy, rb)
    assert host.of_kind(DelPrefNoticeMsg) == []


def test_server_ack_sent_when_enabled():
    sim = Simulator()
    host = FakeHost()
    proxy = Proxy(sim, host, NodeId("mh:m"), ProxyId("px"), Instruments(),
                  send_server_acks=True)
    rid = _admit(proxy, "r1")
    _result(proxy, rid)
    _ack(proxy, rid, del_proxy=True)
    acks = host.of_kind(ServerAckMsg)
    assert len(acks) == 1 and acks[0].request_id == rid


def test_subscription_stays_pending_and_notifications_flow(setup):
    sim, host, proxy = setup
    sub = RequestId("s1")
    proxy.admit_request(sub, "echo", {"subscribe": True, "topic": "t"})
    proxy.handle_notification(NotificationMsg(
        subscription_id=sub, proxy_id=proxy.proxy_id, seq=1, payload="n1"))
    proxy.handle_notification(NotificationMsg(
        subscription_id=sub, proxy_id=proxy.proxy_id, seq=2, payload="n2"))
    fwd = host.of_kind(ResultForwardMsg)
    assert [m.payload for m in fwd] == ["n1", "n2"]
    assert all(not m.del_pref for m in fwd)  # the subscription stays pending
    # Ack the notifications: subscription still pending, proxy alive.
    _ack(proxy, RequestId("s1#n1"))
    _ack(proxy, RequestId("s1#n2"))
    assert not proxy.deleted
    assert proxy.pending_count == 1


def test_duplicate_notification_seq_ignored(setup):
    sim, host, proxy = setup
    sub = RequestId("s1")
    proxy.admit_request(sub, "echo", {"subscribe": True})
    for _ in range(2):
        proxy.handle_notification(NotificationMsg(
            subscription_id=sub, proxy_id=proxy.proxy_id, seq=1, payload="n1"))
    assert len(host.of_kind(ResultForwardMsg)) == 1


def test_notification_for_unknown_subscription_dropped(setup):
    sim, host, proxy = setup
    proxy.handle_notification(NotificationMsg(
        subscription_id=RequestId("ghost"), proxy_id=proxy.proxy_id,
        seq=1, payload="x"))
    assert host.of_kind(ResultForwardMsg) == []


def test_subscription_end_completes_subscribe_request(setup):
    sim, host, proxy = setup
    sub = RequestId("s1")
    proxy.admit_request(sub, "echo", {"subscribe": True})
    proxy.handle_subscription_end(SubscriptionEndMsg(
        subscription_id=sub, proxy_id=proxy.proxy_id, payload="bye"))
    fwd = host.of_kind(ResultForwardMsg)
    assert len(fwd) == 1 and fwd[0].payload == "bye"
    assert fwd[0].del_pref is True  # now the sole pending request
    _ack(proxy, sub, del_proxy=True)
    assert proxy.deleted


def test_request_completion_time_observed(setup):
    sim, host, proxy = setup
    rid = _admit(proxy, "r1")
    _result(proxy, rid)
    _ack(proxy, rid)
    assert len(proxy.instr.metrics.samples("request_completion_time")) == 1
