"""Tests for message base class and latency models."""

from __future__ import annotations

import random

import pytest

from repro.core.protocol import GreetMsg, RequestMsg, ResultForwardMsg
from repro.errors import ConfigError
from repro.net.latency import (
    ConstantLatency,
    ExponentialLatency,
    NormalLatency,
    UniformLatency,
)
from repro.net.message import HEADER_BYTES, Message
from repro.types import NodeId, ProxyId, ProxyRef, RequestId


def test_msg_ids_unique_and_increasing():
    a = RequestMsg(mh=NodeId("mh:x"), request_id=RequestId("r1"), service="s")
    b = RequestMsg(mh=NodeId("mh:x"), request_id=RequestId("r2"), service="s")
    assert b.msg_id > a.msg_id


def test_registry_contains_protocol_kinds():
    registry = Message.registry()
    for kind in ("request", "ack", "greet", "dereg", "deregack",
                 "update_currentloc", "result_forward", "ack_forward",
                 "del_pref_notice", "server_request", "server_result"):
        assert kind in registry, kind


def test_size_scales_with_payload():
    small = RequestMsg(mh=NodeId("mh:x"), request_id=RequestId("r"),
                       service="s", payload="ab")
    large = RequestMsg(mh=NodeId("mh:x"), request_id=RequestId("r"),
                       service="s", payload="ab" * 500)
    assert large.size_bytes() - small.size_bytes() == 998
    assert small.size_bytes() > HEADER_BYTES


def test_size_handles_structured_payloads():
    msg = RequestMsg(mh=NodeId("mh:x"), request_id=RequestId("r"), service="s",
                     payload={"op": "query", "items": [1, 2, 3], "flag": True})
    assert msg.size_bytes() > HEADER_BYTES


def test_describe_mentions_flags():
    ref = ProxyRef(mss=NodeId("mss:s0"), proxy_id=ProxyId("px1"))
    fwd = ResultForwardMsg(mh=NodeId("mh:x"), proxy_ref=ref,
                           request_id=RequestId("r"), delivery_id=1,
                           del_pref=True, retransmission=True)
    assert "del-pref" in fwd.describe()
    assert "retr" in fwd.describe()
    greet = GreetMsg(mh=NodeId("mh:x"), old_mss=NodeId("mss:s1"), seq=4)
    assert "mss:s1" in greet.describe()


def test_constant_latency():
    model = ConstantLatency(0.5)
    assert model.sample(random.Random(0)) == 0.5
    assert model.mean == 0.5
    with pytest.raises(ConfigError):
        ConstantLatency(-1)


def test_uniform_latency_bounds_and_mean():
    model = UniformLatency(0.1, 0.3)
    rng = random.Random(1)
    samples = [model.sample(rng) for _ in range(200)]
    assert all(0.1 <= s <= 0.3 for s in samples)
    assert model.mean == pytest.approx(0.2)
    with pytest.raises(ConfigError):
        UniformLatency(0.3, 0.1)


def test_exponential_latency_floor_and_mean():
    model = ExponentialLatency(scale=0.1, floor=0.05)
    rng = random.Random(2)
    samples = [model.sample(rng) for _ in range(500)]
    assert all(s >= 0.05 for s in samples)
    assert model.mean == pytest.approx(0.15)
    assert sum(samples) / len(samples) == pytest.approx(0.15, rel=0.2)


def test_exponential_zero_scale_is_constant():
    model = ExponentialLatency(scale=0.0, floor=0.02)
    assert model.sample(random.Random(0)) == 0.02


def test_normal_latency_truncated():
    model = NormalLatency(mean=0.01, stddev=0.05, floor=0.001)
    rng = random.Random(3)
    samples = [model.sample(rng) for _ in range(300)]
    assert all(s >= 0.001 for s in samples)
