"""Tests for the SIDAM application layer (city, traffic, workloads)."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigError
from repro.mobility.cellmap import grid_topology
from repro.net.latency import ConstantLatency
from repro.servers.tis_network import TisNetwork
from repro.sidam.city import CityModel
from repro.sidam.traffic import LEVEL_MAX, LEVEL_MIN, StaffReporter, SyntheticTraffic, clamp_level
from repro.sidam.workload import CitizenWorkload, open_home_subscription
from repro.types import CellId

from tests.conftest import make_world


def test_city_model_regions_per_cell():
    city = CityModel(grid_topology(2, 2), n_servers=2, regions_per_cell=2)
    assert len(city.regions) == 8
    assert len(city.regions_of(CellId("cell0_0"))) == 2
    assert city.local_region(CellId("cell0_0")) == "cell0_0/r0"


def test_city_partitions_cover_all_regions():
    city = CityModel(grid_topology(3, 3), n_servers=4)
    assigned = [r for regions in city.partitions.values() for r in regions]
    assert sorted(assigned) == sorted(city.regions)
    assert len(city.partitions) == 4


def test_city_overlay_is_connected_line():
    city = CityModel(grid_topology(2, 2), n_servers=3)
    edges = city.overlay_edges()
    assert len(edges) == 2


def test_pick_region_locality():
    city = CityModel(grid_topology(2, 2), n_servers=1)
    rng = random.Random(0)
    local = city.local_region(CellId("cell0_0"))
    picks = [city.pick_region(rng, CellId("cell0_0"), locality=1.0)
             for _ in range(20)]
    assert all(p == local for p in picks)
    spread = {city.pick_region(rng, CellId("cell0_0"), locality=0.0)
              for _ in range(200)}
    assert len(spread) > 1


def test_pick_region_invalid_locality():
    city = CityModel(grid_topology(2, 2), n_servers=1)
    with pytest.raises(ConfigError):
        city.pick_region(random.Random(0), CellId("cell0_0"), locality=1.5)


def test_clamp_level():
    assert clamp_level(-5) == LEVEL_MIN
    assert clamp_level(99) == LEVEL_MAX
    assert clamp_level(4.2) == 4.2


def _city_world():
    world = make_world(n_cells=4, topology="ring")
    city = CityModel(world.cell_map, n_servers=2)
    tis = TisNetwork(
        world.sim, world.wired, world.directory,
        partitions=city.partitions,
        overlay_edges=city.overlay_edges(),
        instruments=world.instruments,
        service_time=ConstantLatency(0.02),
    )
    return world, city, tis


def test_synthetic_traffic_evolves_levels():
    world, city, tis = _city_world()
    driver = SyntheticTraffic(world.sim, tis, world.rng.stream("traffic"),
                              period=1.0, step=2.0)
    driver.start()
    world.run(until=5.5)
    driver.stop()
    assert driver.updates_applied == 5 * len(city.regions)
    levels = [tis.level_of(r) for r in city.regions]
    assert any(level != 0.0 for level in levels)
    assert all(LEVEL_MIN <= level <= LEVEL_MAX for level in levels)
    world.run_until_idle()


def test_staff_reporter_updates_local_region():
    world, city, tis = _city_world()
    client = world.add_host("staff", world.cells[0])
    reporter = StaffReporter(world.sim, client, city,
                             world.rng.stream("staff"),
                             service="tis.tis0", period=2.0)
    reporter.start()
    world.run(until=7.0)
    reporter.stop()
    world.run_until_idle()
    assert reporter.reports_sent == 3
    done = [p for p in client.requests.values() if p.done]
    assert len(done) == 3
    assert all(p.result.get("ok") for p in done)


def test_staff_reporter_skips_while_inactive():
    world, city, tis = _city_world()
    client = world.add_host("staff", world.cells[0])
    world.run(until=0.5)
    world.hosts["staff"].deactivate()
    reporter = StaffReporter(world.sim, client, city,
                             world.rng.stream("staff"),
                             service="tis.tis0", period=1.0)
    reporter.start()
    world.run(until=5.0)
    reporter.stop()
    assert reporter.reports_sent == 0


def test_citizen_workload_issues_queries():
    world, city, tis = _city_world()
    client = world.add_host("citizen", world.cells[1])
    workload = CitizenWorkload(world.sim, client, city,
                               world.rng.stream("citizen"),
                               service="tis.tis0",
                               mean_interarrival=2.0, locality=0.8,
                               max_requests=5)
    workload.start()
    world.run(until=60.0)
    workload.stop()
    world.run_until_idle()
    assert workload.stats.issued == 5
    assert workload.stats.completed == 5
    assert len(workload.stats.latencies()) == 5


def test_home_subscription_fires_on_change():
    world, city, tis = _city_world()
    client = world.add_host("citizen", world.cells[0])
    world.run(until=0.5)
    sub = open_home_subscription(client, city, service="tis.tis0",
                                 threshold=1.0)
    world.run(until=1.0)
    region = city.local_region(world.cells[0])
    tis.apply_external_update(region, 5.0)
    world.run(until=2.0)
    assert len(sub.notifications) == 1
    assert sub.notifications[0]["region"] == region
    tis.owner_of(region).end_subscription(sub.request_id)
    world.run_until_idle()
