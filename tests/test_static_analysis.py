"""Golden tests for the static analyzer (``repro.analysis.static``).

Each rule gets a violating fixture (must fire, with the right rule id and
location) and a clean twin (must stay quiet).  Two mutation tests then
prove the passes catch real regressions in the live tree: deleting a
dispatch-dict entry from the MSS and injecting a wall-clock call into the
simulator both make ``python -m repro.experiments analyze`` fail.
"""

from __future__ import annotations

import json
import pathlib
import shutil
import textwrap

import pytest

import repro
from repro.analysis.static import (
    RULES,
    compare,
    load_baseline,
    run_analysis,
    save_baseline,
)
from repro.experiments.cli import main

REPRO_ROOT = pathlib.Path(repro.__file__).resolve().parent
REPO_ROOT = REPRO_ROOT.parents[1]
BASELINE = REPO_ROOT / "ANALYSIS_BASELINE.json"

MESSAGE_BASE = '''
        class Message:
            """Fixture root — name matters, the analyzer keys on it."""
'''


def analyze(tmp_path, sources, rules=None):
    for name, text in sources.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text))
    selected = {rules} if isinstance(rules, str) else rules
    return run_analysis(tmp_path, selected)


# -- RDP001: sent but never handled ----------------------------------------

def test_rdp001_fires_on_unhandled_kind(tmp_path):
    result = analyze(tmp_path, {"proto.py": MESSAGE_BASE + '''
        class PingMsg(Message):
            kind = "ping"

        def send(net):
            net.push(PingMsg())
    '''}, rules="RDP001")
    assert [f.rule for f in result.findings] == ["RDP001"]
    finding = result.findings[0]
    assert finding.path == "proto.py"
    assert "'ping'" in finding.message
    assert "PingMsg()" in finding.context


def test_rdp001_quiet_with_dict_handler(tmp_path):
    result = analyze(tmp_path, {"proto.py": MESSAGE_BASE + '''
        class PingMsg(Message):
            kind = "ping"

        def on_ping(msg):
            return msg.kind

        HANDLERS = {PingMsg: on_ping}

        def send(net):
            net.push(PingMsg())
    '''}, rules="RDP001")
    assert result.findings == []


def test_rdp001_quiet_with_kind_compare_handler(tmp_path):
    result = analyze(tmp_path, {"proto.py": MESSAGE_BASE + '''
        class PingMsg(Message):
            kind = "ping"

        def dispatch(msg):
            if msg.kind == "ping":
                return True
            return False

        def send(net):
            net.push(PingMsg())
    '''}, rules="RDP001")
    assert result.findings == []


def test_rdp001_ignores_orphaned_annotation_handler(tmp_path):
    # A handler method whose dispatch entry was deleted must not count:
    # the annotation alone doesn't route any message to it.
    sources = {"proto.py": MESSAGE_BASE + '''
        class PingMsg(Message):
            kind = "ping"

        class Node:
            def on_ping(self, msg: PingMsg) -> None:
                pass

            def send(self, net):
                net.push(PingMsg())
    '''}
    result = analyze(tmp_path, sources, rules="RDP001")
    assert [f.rule for f in result.findings] == ["RDP001"]

    # Referencing the handler (here: explicit routing) credits it again.
    sources["proto.py"] += '''
        def route(node, msg):
            node.on_ping(msg)
    '''
    result = analyze(tmp_path, sources, rules="RDP001")
    assert result.findings == []


# -- RDP002: dead protocol vocabulary --------------------------------------

def test_rdp002_fires_on_never_constructed_kind(tmp_path):
    result = analyze(tmp_path, {"proto.py": MESSAGE_BASE + '''
        class GhostMsg(Message):
            kind = "ghost"
    '''}, rules="RDP002")
    assert [f.rule for f in result.findings] == ["RDP002"]
    assert "never" in result.findings[0].message


def test_rdp002_quiet_when_constructed(tmp_path):
    result = analyze(tmp_path, {"proto.py": MESSAGE_BASE + '''
        class GhostMsg(Message):
            kind = "ghost"

        def send(net):
            net.push(GhostMsg())
    '''}, rules="RDP002")
    assert result.findings == []


# -- RDP003: duplicate kind strings ----------------------------------------

def test_rdp003_fires_on_duplicate_kind(tmp_path):
    result = analyze(tmp_path, {"proto.py": MESSAGE_BASE + '''
        class PingMsg(Message):
            kind = "ping"

        class OtherPingMsg(Message):
            kind = "ping"
    '''}, rules="RDP003")
    assert [f.rule for f in result.findings] == ["RDP003"]
    assert "OtherPingMsg" in result.findings[0].message
    assert "PingMsg" in result.findings[0].message


def test_rdp003_quiet_on_unique_kinds(tmp_path):
    result = analyze(tmp_path, {"proto.py": MESSAGE_BASE + '''
        class PingMsg(Message):
            kind = "ping"

        class PongMsg(Message):
            kind = "pong"
    '''}, rules="RDP003")
    assert result.findings == []


# -- RDP004: unknown field access ------------------------------------------

def test_rdp004_fires_on_typoed_field(tmp_path):
    result = analyze(tmp_path, {"proto.py": MESSAGE_BASE + '''
        class PingMsg(Message):
            kind = "ping"
            payload: int = 0

        def on_ping(msg):
            return msg.paylod

        HANDLERS = {PingMsg: on_ping}
    '''}, rules="RDP004")
    assert [f.rule for f in result.findings] == ["RDP004"]
    assert "paylod" in result.findings[0].message
    assert result.findings[0].path == "proto.py"


def test_rdp004_quiet_on_declared_field(tmp_path):
    result = analyze(tmp_path, {"proto.py": MESSAGE_BASE + '''
        class PingMsg(Message):
            kind = "ping"
            payload: int = 0

        def on_ping(msg):
            return msg.payload

        HANDLERS = {PingMsg: on_ping}
    '''}, rules="RDP004")
    assert result.findings == []


def test_rdp004_honours_isinstance_narrowing(tmp_path):
    result = analyze(tmp_path, {"proto.py": MESSAGE_BASE + '''
        class PingMsg(Message):
            kind = "ping"
            payload: int = 0

        class TracedPingMsg(PingMsg):
            kind = "traced_ping"
            trace_tag: str = ""

        def on_ping(msg):
            if isinstance(msg, TracedPingMsg):
                return msg.trace_tag
            return msg.payload

        HANDLERS = {PingMsg: on_ping}
    '''}, rules="RDP004")
    assert result.findings == []


# -- RDP005: ack obligations -----------------------------------------------

def test_rdp005_fires_when_handler_cannot_ack(tmp_path):
    result = analyze(tmp_path, {"proto.py": MESSAGE_BASE + '''
        class WirelessResultMsg(Message):
            kind = "wireless_result"

        class AckMsg(Message):
            kind = "ack"

        def on_result(msg):
            pass

        HANDLERS = {WirelessResultMsg: on_result}

        def sender(net):
            net.send(WirelessResultMsg())
            net.send(AckMsg())
    '''}, rules="RDP005")
    assert [f.rule for f in result.findings] == ["RDP005"]
    assert "wireless_result" in result.findings[0].message
    assert "ack" in result.findings[0].message


def test_rdp005_quiet_on_transitive_ack(tmp_path):
    # The ack send is two calls deep — reachability must follow it.
    result = analyze(tmp_path, {"proto.py": MESSAGE_BASE + '''
        class WirelessResultMsg(Message):
            kind = "wireless_result"

        class AckMsg(Message):
            kind = "ack"

        def on_result(msg):
            _reply(msg)

        def _reply(msg):
            _emit(AckMsg())

        def _emit(out):
            pass

        HANDLERS = {WirelessResultMsg: on_result}

        def sender(net):
            net.send(WirelessResultMsg())
            net.send(AckMsg())
    '''}, rules="RDP005")
    assert result.findings == []


# -- DET001: wall clocks ---------------------------------------------------

def test_det001_fires_on_time_time(tmp_path):
    result = analyze(tmp_path, {"mod.py": '''
        import time

        def stamp():
            return time.time()
    '''}, rules="DET001")
    assert [f.rule for f in result.findings] == ["DET001"]
    assert "time.time()" in result.findings[0].message


def test_det001_fires_through_from_import_alias(tmp_path):
    result = analyze(tmp_path, {"mod.py": '''
        from time import monotonic as now

        def stamp():
            return now()
    '''}, rules="DET001")
    assert [f.rule for f in result.findings] == ["DET001"]


def test_det001_quiet_on_sim_now(tmp_path):
    result = analyze(tmp_path, {"mod.py": '''
        def stamp(sim):
            return sim.now
    '''}, rules="DET001")
    assert result.findings == []


# -- DET002: unseeded randomness -------------------------------------------

def test_det002_fires_on_global_random(tmp_path):
    result = analyze(tmp_path, {"mod.py": '''
        import random

        def draw():
            return random.random()
    '''}, rules="DET002")
    assert [f.rule for f in result.findings] == ["DET002"]


def test_det002_fires_on_unseeded_random_instance(tmp_path):
    result = analyze(tmp_path, {"mod.py": '''
        from random import Random

        def make():
            return Random()
    '''}, rules="DET002")
    assert [f.rule for f in result.findings] == ["DET002"]


def test_det002_quiet_on_seeded_random(tmp_path):
    result = analyze(tmp_path, {"mod.py": '''
        import random

        def make(seed):
            return random.Random(seed)
    '''}, rules="DET002")
    assert result.findings == []


# -- DET003: id()/hash() leaks ---------------------------------------------

def test_det003_fires_on_id_call(tmp_path):
    result = analyze(tmp_path, {"mod.py": '''
        def key_of(obj):
            return id(obj)
    '''}, rules="DET003")
    assert [f.rule for f in result.findings] == ["DET003"]


def test_det003_allows_hash_inside_dunder_hash(tmp_path):
    result = analyze(tmp_path, {"mod.py": '''
        class Key:
            def __init__(self, name):
                self.name = name

            def __hash__(self):
                return hash(self.name)
    '''}, rules="DET003")
    assert result.findings == []


# -- DET004: set-iteration order leaks -------------------------------------

def test_det004_fires_on_effectful_set_loop(tmp_path):
    result = analyze(tmp_path, {"mod.py": '''
        class Hub:
            def __init__(self):
                self.peers = set()

            def broadcast(self, net, msg):
                for peer in self.peers:
                    net.send(peer, msg)
    '''}, rules="DET004")
    assert [f.rule for f in result.findings] == ["DET004"]
    assert "set order" in result.findings[0].message


def test_det004_quiet_on_sorted_iteration(tmp_path):
    result = analyze(tmp_path, {"mod.py": '''
        class Hub:
            def __init__(self):
                self.peers = set()

            def broadcast(self, net, msg):
                for peer in sorted(self.peers):
                    net.send(peer, msg)
    '''}, rules="DET004")
    assert result.findings == []


# -- DET005: uncovered global counters -------------------------------------

def test_det005_fires_on_new_module_counter(tmp_path):
    result = analyze(tmp_path, {"mod.py": '''
        import itertools

        _widget_ids = itertools.count(1)
    '''}, rules="DET005")
    assert [f.rule for f in result.findings] == ["DET005"]
    assert "_widget_ids" in result.findings[0].message


def test_det005_quiet_on_instance_counter(tmp_path):
    result = analyze(tmp_path, {"mod.py": '''
        import itertools

        class Factory:
            def __init__(self):
                self._widget_ids = itertools.count(1)
    '''}, rules="DET005")
    assert result.findings == []


# -- suppressions and SUP001 -----------------------------------------------

def test_same_line_suppression_swallows_finding(tmp_path):
    result = analyze(tmp_path, {"mod.py": '''
        import time

        def stamp():
            return time.time()  # repro: allow[DET001]
    '''})
    assert result.findings == []
    assert [f.rule for f in result.suppressed] == ["DET001"]


def test_preceding_comment_suppression_swallows_finding(tmp_path):
    result = analyze(tmp_path, {"mod.py": '''
        import time

        def stamp():
            # repro: allow[DET001]
            return time.time()
    '''})
    assert result.findings == []
    assert [f.rule for f in result.suppressed] == ["DET001"]


def test_suppression_above_decorated_function_covers_head(tmp_path):
    """Satellite regression: an allow comment above a decorated function
    covers findings on the function head (here: an unseeded Random()
    default evaluated at def time)."""
    result = analyze(tmp_path, {"mod.py": '''
        from random import Random

        def deco(f):
            return f

        # repro: allow[DET002]
        @deco
        def make(rng=Random()):
            return rng
    '''})
    assert result.findings == []
    assert [f.rule for f in result.suppressed] == ["DET002"]


def test_suppression_above_multiline_statement_head_covers_finding(tmp_path):
    """Satellite regression: the allow comment sits above a statement
    whose expression continues onto the next line — the finding's own
    line is inside the statement, not directly under the comment."""
    result = analyze(tmp_path, {"mod.py": '''
        import time

        def stamp():
            # repro: allow[DET001]
            return (
                time.time())
    '''})
    assert result.findings == []
    assert [f.rule for f in result.suppressed] == ["DET001"]


def test_suppression_above_decorator_does_not_cover_body(tmp_path):
    """Precision guard: a head-level allow must not swallow findings in
    the function body."""
    result = analyze(tmp_path, {"mod.py": '''
        import time

        def deco(f):
            return f

        # repro: allow[DET001]
        @deco
        def stamp():
            return time.time()
    '''})
    rules = sorted(f.rule for f in result.findings)
    assert rules == ["DET001", "SUP001"]  # unsuppressed + stale allow


def test_unused_suppression_reports_sup001(tmp_path):
    result = analyze(tmp_path, {"mod.py": '''
        def fine():
            return 1  # repro: allow[DET001]
    '''})
    assert [f.rule for f in result.findings] == ["SUP001"]
    assert "allow[DET001]" in result.findings[0].message


def test_suppression_mentioned_in_docstring_is_not_a_suppression(tmp_path):
    result = analyze(tmp_path, {"mod.py": '''
        """Docs may show the syntax: ``# repro: allow[DET001]``."""

        def fine():
            return 1
    '''})
    assert result.findings == []


def test_unparseable_file_is_reported(tmp_path):
    result = analyze(tmp_path, {"broken.py": '''
        def f(:
    '''})
    assert [f.rule for f in result.findings] == ["SUP001"]
    assert "does not parse" in result.findings[0].message


# -- baseline ratchet ------------------------------------------------------

def test_baseline_roundtrip_and_ratchet(tmp_path):
    sources = {"mod.py": '''
        import time

        def stamp():
            return time.time()
    '''}
    result = analyze(tmp_path / "tree", sources, rules="DET001")
    assert len(result.findings) == 1

    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, result.findings)
    payload = json.loads(baseline_path.read_text())
    assert payload["version"] == 1
    assert len(payload["findings"]) == 1

    # Same findings again: all baselined, nothing new.
    comparison = compare(result.findings, load_baseline(baseline_path))
    assert comparison.ok
    assert len(comparison.baselined) == 1

    # A second wall-clock call exceeds the baselined count: new finding.
    sources["mod.py"] += '''
        def stamp2():
            return time.time()
    '''
    worse = analyze(tmp_path / "tree", sources, rules="DET001")
    comparison = compare(worse.findings, load_baseline(baseline_path))
    assert not comparison.ok
    assert len(comparison.new) == 1

    # Fixing everything marks the baseline entry as fixed.
    comparison = compare([], load_baseline(baseline_path))
    assert comparison.ok
    assert comparison.fixed == 1


def test_missing_baseline_is_empty():
    assert load_baseline(pathlib.Path("/nonexistent/baseline.json")) == {}


# -- live tree self-checks -------------------------------------------------

def test_live_tree_matches_committed_baseline():
    """The committed tree must carry no analyzer debt beyond the baseline,
    and the baseline must carry no stale (already-fixed) entries."""
    result = run_analysis(REPRO_ROOT)
    comparison = compare(result.findings, load_baseline(BASELINE))
    assert comparison.new == [], "\n".join(f.render() for f in comparison.new)
    assert comparison.fixed == 0, (
        "baseline has stale entries — re-record with "
        "'python -m repro.experiments analyze --update-baseline'")


def test_live_tree_protocol_surface_is_known():
    """Every paper message kind the chain depends on exists and is live."""
    from repro.analysis.static import SourceTree, build_protocol_model

    model = build_protocol_model(SourceTree.load(REPRO_ROOT))
    kinds = {c.kind for c in model.classes.values() if c.is_concrete}
    for kind in ("request", "forwarded_request", "server_request",
                 "server_result", "result_forward", "wireless_result",
                 "ack", "ack_forward", "dereg", "deregack"):
        assert kind in kinds, f"paper kind '{kind}' missing from the tree"


# -- mutation tests: the analyzer must catch real regressions --------------

@pytest.fixture
def mutable_tree(tmp_path):
    tree = tmp_path / "repro"
    shutil.copytree(REPRO_ROOT, tree,
                    ignore=shutil.ignore_patterns("__pycache__"))
    return tree


def test_deleting_a_dispatch_entry_fails_analyze(mutable_tree, capsys):
    """Satellite (f): removing the MSS dispatch entry for del_pref_notice
    leaves the kind sent-but-unhandled — RDP001 must fail the CLI."""
    mss = mutable_tree / "stations" / "mss.py"
    text = mss.read_text()
    entry = "DelPrefNoticeMsg: self._on_del_pref_notice"
    assert entry in text
    mss.write_text("\n".join(
        line for line in text.splitlines() if entry not in line) + "\n")

    code = main(["analyze", "--root", str(mutable_tree), "--no-baseline"])
    out = capsys.readouterr().out
    assert code == 1
    assert "RDP001" in out
    assert "del_pref_notice" in out
    assert "core/proxy.py:" in out  # file:line of the now-orphaned send


def test_injected_wallclock_fails_analyze(mutable_tree, capsys):
    sim = mutable_tree / "sim" / "simulator.py"
    sim.write_text("import time\n_T0 = time.time()\n" + sim.read_text())

    code = main(["analyze", "--root", str(mutable_tree), "--no-baseline"])
    out = capsys.readouterr().out
    assert code == 1
    assert "DET001" in out
    assert "sim/simulator.py:2" in out


def test_new_global_counter_fails_analyze(mutable_tree, capsys):
    mail = mutable_tree / "servers" / "mail.py"
    mail.write_text(mail.read_text()
                    + "\n_regression_ids = itertools.count(1)\n")

    code = main(["analyze", "--root", str(mutable_tree), "--no-baseline"])
    out = capsys.readouterr().out
    assert code == 1
    assert "DET005" in out
    assert "_regression_ids" in out


# -- CLI surface -----------------------------------------------------------

def test_cli_analyze_clean_tree_exits_zero(capsys):
    assert main(["analyze"]) == 0
    out = capsys.readouterr().out
    assert "files scanned" in out


def test_cli_list_rules(capsys):
    assert main(["analyze", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULES:
        assert rule_id in out


def test_cli_rules_subset(capsys):
    assert main(["analyze", "--rules", "DET001,DET002",
                 "--no-baseline"]) == 0


def test_cli_select_prefix_expansion(tmp_path, capsys):
    (tmp_path / "stations").mkdir()
    (tmp_path / "stations" / "mss.py").write_text(textwrap.dedent('''
        import time

        class MobileSupportStation:
            def poke(self, proxy: "Proxy") -> None:
                proxy.currentloc = time.time()
    '''))
    # The SHD prefix selects the whole shard family — and only it: the
    # DET001 wall clock on the same line must not appear.
    code = main(["analyze", "--root", str(tmp_path), "--no-baseline",
                 "--select", "SHD"])
    out = capsys.readouterr().out
    assert code == 1
    assert "SHD001" in out
    assert "DET001" not in out


def test_cli_select_unknown_rule_errors(capsys):
    assert main(["analyze", "--no-baseline", "--select", "NOPE"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_format_json_is_stable(tmp_path, capsys):
    (tmp_path / "mod.py").write_text(
        "import time\n\ndef f():\n    return time.time()\n")
    outputs = []
    for _ in range(2):
        code = main(["analyze", "--root", str(tmp_path), "--no-baseline",
                     "--format", "json"])
        assert code == 1
        outputs.append(capsys.readouterr().out)
    assert outputs[0] == outputs[1]
    payload = json.loads(outputs[0])
    assert payload["findings"][0]["rule"] == "DET001"
    assert payload["findings"][0]["path"] == "mod.py"
    assert "fingerprint" in payload["findings"][0]


def test_cli_format_sarif(tmp_path, capsys):
    (tmp_path / "mod.py").write_text(
        "import time\n\ndef f():\n    return time.time()\n")
    out_file = tmp_path / "analysis.sarif"
    code = main(["analyze", "--root", str(tmp_path), "--no-baseline",
                 "--format", "sarif", "--out", str(out_file)])
    assert code == 1
    printed = capsys.readouterr().out
    assert out_file.read_text() == printed
    sarif = json.loads(printed)
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-analyze"
    assert {r["id"] for r in run["tool"]["driver"]["rules"]} == {"DET001"}
    result = run["results"][0]
    assert result["ruleId"] == "DET001"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "mod.py"
    assert location["region"]["startLine"] == 4


def test_baseline_justifications_roundtrip(tmp_path, capsys):
    from repro.analysis.static import load_justifications, unjustified

    (tmp_path / "mod.py").write_text(
        "import time\n\ndef f():\n    return time.time()\n")
    baseline = tmp_path / "baseline.json"
    assert main(["analyze", "--root", str(tmp_path),
                 "--baseline", str(baseline), "--update-baseline"]) == 0
    capsys.readouterr()

    # An unjustified entry passes the gate but warns on stderr.
    assert main(["analyze", "--root", str(tmp_path),
                 "--baseline", str(baseline)]) == 0
    assert "lacks a justification" in capsys.readouterr().err

    # Writing the justification silences the warning ...
    payload = json.loads(baseline.read_text())
    fingerprint = next(iter(payload["findings"]))
    payload["justifications"] = {fingerprint: "legacy wall clock, tracked"}
    baseline.write_text(json.dumps(payload))
    assert main(["analyze", "--root", str(tmp_path),
                 "--baseline", str(baseline)]) == 0
    assert "lacks a justification" not in capsys.readouterr().err
    assert unjustified(load_baseline(baseline),
                       load_justifications(baseline)) == []

    # ... and --update-baseline preserves it for surviving fingerprints.
    assert main(["analyze", "--root", str(tmp_path),
                 "--baseline", str(baseline), "--update-baseline"]) == 0
    assert json.loads(baseline.read_text())["justifications"] == {
        fingerprint: "legacy wall clock, tracked"}


def test_mypy_strict_ratchet_modules_exist():
    """Every module on the pyproject strict-ratchet list must exist, so
    the ratchet cannot silently rot when files move."""
    import tomllib

    config = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
    strict = [o for o in config["tool"]["mypy"]["overrides"]
              if not o.get("ignore_errors", False)]
    assert strict, "pyproject.toml lost its mypy strict-ratchet override"
    modules = strict[0]["module"]
    assert len(modules) >= 3  # the ratchet must cover at least 3 modules
    for module in modules:
        rel = module.replace(".", "/").removeprefix("repro/")
        assert (REPRO_ROOT / f"{rel}.py").exists() \
            or (REPRO_ROOT / rel / "__init__.py").exists(), \
            f"ratcheted module {module} has no source file"


def test_mypy_strict_ratchet_passes():
    """Run mypy on the ratchet when it is installed (CI); skip offline."""
    import shutil as _shutil
    import subprocess

    if _shutil.which("mypy") is None:
        pytest.skip("mypy not installed in this environment")
    proc = subprocess.run(["mypy"], cwd=REPO_ROOT,
                          capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_ruff_critical_rules_pass():
    """Run ruff when it is installed (CI); skip offline."""
    import shutil as _shutil
    import subprocess

    if _shutil.which("ruff") is None:
        pytest.skip("ruff not installed in this environment")
    proc = subprocess.run(["ruff", "check", "src"], cwd=REPO_ROOT,
                          capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_cli_update_baseline(tmp_path, capsys):
    (tmp_path / "mod.py").write_text(
        "import time\n\ndef f():\n    return time.time()\n")
    baseline = tmp_path / "baseline.json"

    # Without a baseline the finding fails the run ...
    assert main(["analyze", "--root", str(tmp_path), "--no-baseline"]) == 1
    # ... recording it makes the run pass ...
    assert main(["analyze", "--root", str(tmp_path),
                 "--baseline", str(baseline), "--update-baseline"]) == 0
    assert baseline.exists()
    assert main(["analyze", "--root", str(tmp_path),
                 "--baseline", str(baseline)]) == 0
    # ... and the output still shows the baselined debt.
    out = capsys.readouterr().out
    assert "1 baselined" in out
