"""The online invariant oracle: unit checks over synthetic traces, a
clean integration run, and mutation self-tests proving the checkers fire
when known protocol mechanisms are broken."""

from __future__ import annotations

import pytest

from tests.conftest import make_world
from repro.core.proxy import Proxy
from repro.net.latency import ConstantLatency
from repro.sim.tracing import TraceRecorder
from repro.verify import (
    CausalWiredOrder,
    ExactlyOnceDelivery,
    InvariantViolation,
    NoCustodyLeak,
    NoLostResult,
    Oracle,
    PrefHandoverConsistency,
    SafeProxyDeletion,
    SingleProxyPerSeries,
)


def run_synthetic(checker, rows, finish=True):
    """Feed (time, kind, node, fields) rows through one checker."""
    oracle = Oracle([checker])
    recorder = TraceRecorder()
    oracle.attach(recorder)
    for time, kind, node, fields in rows:
        recorder.record(time, kind, node, **fields)
    if finish:
        oracle.finish()
    return oracle.violations


class TestExactlyOnceDelivery:
    def test_clean_deliveries(self):
        rows = [
            (1.0, "deliver", "mh:a", {"request_id": "a-r1", "delivery_id": 1}),
            (2.0, "deliver", "mh:a", {"request_id": "a-r2", "delivery_id": 2}),
            (2.5, "deliver", "mh:b", {"request_id": "a-r1", "delivery_id": 3}),
        ]
        assert run_synthetic(ExactlyOnceDelivery(), rows) == []

    def test_duplicate_delivery_flagged(self):
        rows = [
            (1.0, "deliver", "mh:a", {"request_id": "a-r1", "delivery_id": 1}),
            (2.0, "deliver", "mh:a", {"request_id": "a-r1", "delivery_id": 9}),
        ]
        violations = run_synthetic(ExactlyOnceDelivery(), rows)
        assert len(violations) == 1
        assert violations[0].invariant == "exactly_once_delivery"
        assert "a-r1" in str(violations[0])


class TestNoLostResult:
    def test_delivered_request_is_clean(self):
        rows = [
            (1.0, "request", "mh:a", {"request_id": "a-r1", "service": "echo"}),
            (2.0, "deliver", "mh:a", {"request_id": "a-r1", "delivery_id": 1}),
        ]
        assert run_synthetic(NoLostResult(), rows) == []

    def test_lost_request_flagged_at_finish(self):
        rows = [
            (1.0, "request", "mh:a", {"request_id": "a-r1", "service": "echo"}),
        ]
        violations = run_synthetic(NoLostResult(), rows)
        assert [v.invariant for v in violations] == ["no_lost_result"]
        # Liveness: nothing fires before finish.
        assert run_synthetic(NoLostResult(), rows, finish=False) == []


class TestSingleProxyPerSeries:
    def test_successor_then_cleanup_is_clean(self):
        rows = [
            (1.0, "proxy_create", "mss:s0", {"mh": "mh:a", "proxy_id": "px1"}),
            (2.0, "proxy_create", "mss:s1", {"mh": "mh:a", "proxy_id": "px2"}),
            (2.1, "proxy_delete", "mss:s0", {"mh": "mh:a", "proxy_id": "px1"}),
            (3.0, "proxy_admit", "mss:s1",
             {"mh": "mh:a", "proxy_id": "px2", "request_id": "a-r2"}),
        ]
        assert run_synthetic(SingleProxyPerSeries(), rows) == []

    def test_superseded_proxy_admitting_flagged(self):
        rows = [
            (1.0, "proxy_create", "mss:s0", {"mh": "mh:a", "proxy_id": "px1"}),
            (2.0, "proxy_create", "mss:s1", {"mh": "mh:a", "proxy_id": "px2"}),
            (3.0, "proxy_admit", "mss:s0",
             {"mh": "mh:a", "proxy_id": "px1", "request_id": "a-r2"}),
        ]
        violations = run_synthetic(SingleProxyPerSeries(), rows, finish=False)
        assert [v.invariant for v in violations] == ["single_proxy_per_series"]

    def test_lingering_superseded_proxy_flagged(self):
        rows = [
            (1.0, "proxy_create", "mss:s0", {"mh": "mh:a", "proxy_id": "px1"}),
            (2.0, "proxy_create", "mss:s1", {"mh": "mh:a", "proxy_id": "px2"}),
        ]
        violations = run_synthetic(SingleProxyPerSeries(), rows)
        assert len(violations) == 1
        assert "never deleted" in str(violations[0])


class TestSafeProxyDeletion:
    def test_acked_then_deleted_is_clean(self):
        rows = [
            (1.0, "proxy_create", "mss:s0", {"mh": "mh:a", "proxy_id": "px1"}),
            (1.5, "proxy_admit", "mss:s0",
             {"mh": "mh:a", "proxy_id": "px1", "request_id": "a-r1"}),
            (2.0, "proxy_ack", "mss:s0",
             {"mh": "mh:a", "proxy_id": "px1", "request_id": "a-r1"}),
            (2.1, "proxy_delete", "mss:s0", {"mh": "mh:a", "proxy_id": "px1"}),
        ]
        assert run_synthetic(SafeProxyDeletion(), rows) == []

    def test_deletion_with_unacked_request_flagged(self):
        rows = [
            (1.0, "proxy_create", "mss:s0", {"mh": "mh:a", "proxy_id": "px1"}),
            (1.5, "proxy_admit", "mss:s0",
             {"mh": "mh:a", "proxy_id": "px1", "request_id": "a-r1"}),
            (2.0, "proxy_delete", "mss:s0", {"mh": "mh:a", "proxy_id": "px1"}),
        ]
        violations = run_synthetic(SafeProxyDeletion(), rows)
        assert [v.invariant for v in violations] == ["safe_proxy_deletion"]
        assert "a-r1" in str(violations[0])

    def test_migration_transfers_custody(self):
        rows = [
            (1.0, "proxy_create", "mss:s0", {"mh": "mh:a", "proxy_id": "px1"}),
            (1.5, "proxy_admit", "mss:s0",
             {"mh": "mh:a", "proxy_id": "px1", "request_id": "a-r1"}),
            (2.0, "proxy_move", "mss:s0",
             {"mh": "mh:a", "proxy_id": "px1", "to": "mss:s1",
              "new_proxy_id": "px2"}),
            (2.0, "proxy_delete", "mss:s0", {"mh": "mh:a", "proxy_id": "px1"}),
            (2.1, "proxy_create", "mss:s1", {"mh": "mh:a", "proxy_id": "px2"}),
            (3.0, "proxy_ack", "mss:s1",
             {"mh": "mh:a", "proxy_id": "px2", "request_id": "a-r1"}),
            (3.1, "proxy_delete", "mss:s1", {"mh": "mh:a", "proxy_id": "px2"}),
        ]
        assert run_synthetic(SafeProxyDeletion(), rows) == []


class TestNoCustodyLeak:
    CREATE = (1.0, "proxy_create", "mss:s0", {"mh": "mh:a", "proxy_id": "px1"})
    RESULT = (2.0, "proxy_result", "mss:s0",
              {"mh": "mh:a", "proxy_id": "px1", "request_id": "a-r1"})

    def test_acked_custody_is_clean(self):
        rows = [self.CREATE, self.RESULT,
                (3.0, "proxy_ack", "mss:s0",
                 {"mh": "mh:a", "proxy_id": "px1", "request_id": "a-r1"})]
        assert run_synthetic(NoCustodyLeak(), rows) == []

    def test_custody_held_at_finish_flagged(self):
        violations = run_synthetic(NoCustodyLeak(), [self.CREATE, self.RESULT])
        assert [v.invariant for v in violations] == ["no_custody_leak"]
        assert "a-r1" in str(violations[0])

    def test_expiry_discharges_custody(self):
        rows = [self.CREATE, self.RESULT,
                (4.0, "custody_expired", "mss:s0",
                 {"mh": "mh:a", "proxy_id": "px1", "request_id": "a-r1",
                  "age": 2.0})]
        assert run_synthetic(NoCustodyLeak(), rows) == []

    def test_deletion_while_holding_custody_flagged(self):
        rows = [self.CREATE, self.RESULT,
                (3.0, "proxy_delete", "mss:s0",
                 {"mh": "mh:a", "proxy_id": "px1"})]
        violations = run_synthetic(NoCustodyLeak(), rows)
        assert [v.invariant for v in violations] == ["no_custody_leak"]
        assert "deleted while still holding" in str(violations[0])

    def test_migration_rehomes_custody(self):
        rows = [self.CREATE, self.RESULT,
                (3.0, "proxy_move", "mss:s0",
                 {"mh": "mh:a", "proxy_id": "px1", "to": "mss:s1",
                  "new_proxy_id": "px2"}),
                (3.0, "proxy_delete", "mss:s0",
                 {"mh": "mh:a", "proxy_id": "px1"}),
                (3.1, "proxy_create", "mss:s1",
                 {"mh": "mh:a", "proxy_id": "px2"}),
                (4.0, "proxy_ack", "mss:s1",
                 {"mh": "mh:a", "proxy_id": "px2", "request_id": "a-r1"})]
        assert run_synthetic(NoCustodyLeak(), rows) == []

    def test_mss_crash_absolves_volatile_custody(self):
        rows = [self.CREATE, self.RESULT,
                (3.0, "mss_crash", "mss:s0", {})]
        assert run_synthetic(NoCustodyLeak(), rows) == []


class TestProxyAdoption:
    """MSS-amnesia forks: pref-ref adoption designates the serving proxy
    and the orphan stub is exempt from deletion-liveness (but must still
    never admit)."""

    FORK = [
        (1.0, "proxy_create", "mss:s0", {"mh": "mh:a", "proxy_id": "px1"}),
        # s0 crashed and forgot; blind re-registration forks the series.
        (2.0, "proxy_create", "mss:s1", {"mh": "mh:a", "proxy_id": "px2"}),
    ]

    def test_adoption_reinstates_old_proxy_and_absolves_stub(self):
        rows = self.FORK + [
            # The pref chain heals by re-designating the ORIGINAL proxy.
            (3.0, "proxy_adopt", "mss:s0", {"mh": "mh:a", "proxy_id": "px1",
                                            "how": "refresh"}),
            (4.0, "proxy_admit", "mss:s0",
             {"mh": "mh:a", "proxy_id": "px1", "request_id": "a-r2"}),
        ]
        # px2 is the fork's orphan stub: never deleted, yet not a leak.
        assert run_synthetic(SingleProxyPerSeries(), rows) == []

    def test_fork_loser_admitting_still_flagged(self):
        rows = self.FORK + [
            (3.0, "proxy_adopt", "mss:s0", {"mh": "mh:a", "proxy_id": "px1",
                                            "how": "refresh"}),
            (4.0, "proxy_admit", "mss:s1",
             {"mh": "mh:a", "proxy_id": "px2", "request_id": "a-r2"}),
        ]
        violations = run_synthetic(SingleProxyPerSeries(), rows, finish=False)
        assert [v.invariant for v in violations] == ["single_proxy_per_series"]


class TestCausalWiredOrder:
    @staticmethod
    def _send(t, node, msg_id):
        return (t, "send", node, {"net": "wired", "msg_id": msg_id,
                                  "msg": "m", "dst": "x"})

    @staticmethod
    def _recv(t, node, msg_id, src="x"):
        return (t, "recv", node, {"net": "wired", "msg_id": msg_id,
                                  "msg": "m", "src": src})

    def test_causal_order_respected(self):
        rows = [
            self._send(1.0, "A", 1),          # A -> C
            self._send(1.1, "A", 2),          # A -> B
            self._recv(1.2, "B", 2),
            self._send(1.3, "B", 3),          # B -> C (after hearing from A)
            self._recv(1.4, "C", 1),          # m1 before m3: fine
            self._recv(1.5, "C", 3),
        ]
        assert run_synthetic(CausalWiredOrder(), rows) == []

    def test_causal_inversion_flagged(self):
        rows = [
            self._send(1.0, "A", 1),          # A -> C   (slow)
            self._send(1.1, "A", 2),          # A -> B
            self._recv(1.2, "B", 2),
            self._send(1.3, "B", 3),          # B -> C
            self._recv(1.4, "C", 3),          # m3 overtakes m1
            self._recv(1.5, "C", 1),
        ]
        violations = run_synthetic(CausalWiredOrder(), rows, finish=False)
        assert [v.invariant for v in violations] == ["causal_wired_order"]

    def test_local_dispatch_ignored(self):
        rows = [
            (1.0, "send", "A", {"net": "local", "msg_id": 1, "msg": "m",
                                "dst": "A"}),
        ]
        assert run_synthetic(CausalWiredOrder(), rows) == []


class TestPrefHandoverConsistency:
    def test_handoff_releases_ownership(self):
        rows = [
            (1.0, "register", "mss:s0", {"mh": "mh:a", "seq": 0, "how": "join"}),
            (2.0, "handoff_out", "mss:s0", {"mh": "mh:a", "to": "mss:s1"}),
            (2.1, "register", "mss:s1",
             {"mh": "mh:a", "seq": 1, "how": "handoff"}),
        ]
        assert run_synthetic(PrefHandoverConsistency(), rows) == []

    def test_dual_registration_flagged(self):
        rows = [
            (1.0, "register", "mss:s0", {"mh": "mh:a", "seq": 0, "how": "join"}),
            (2.0, "register", "mss:s1", {"mh": "mh:a", "seq": 1, "how": "join"}),
        ]
        violations = run_synthetic(PrefHandoverConsistency(), rows)
        assert [v.invariant for v in violations] == ["pref_handover_consistency"]

    def test_handoff_with_unknown_proxy_ref_flagged(self):
        rows = [
            (1.0, "register", "mss:s0", {"mh": "mh:a", "seq": 0, "how": "join"}),
            (2.0, "handoff_out", "mss:s0", {"mh": "mh:a", "to": "mss:s1"}),
            (2.1, "handoff_done", "mss:s1",
             {"mh": "mh:a", "old": "mss:s0", "duration": 0.1,
              "proxy_id": "px99"}),
        ]
        violations = run_synthetic(PrefHandoverConsistency(), rows)
        assert len(violations) == 1
        assert "px99" in str(violations[0])

    def test_handoff_ref_follows_proxy_move_renames(self):
        rows = [
            (1.0, "register", "mss:s0", {"mh": "mh:a", "seq": 0, "how": "join"}),
            (1.1, "proxy_create", "mss:s0", {"mh": "mh:a", "proxy_id": "px1"}),
            (1.5, "proxy_move", "mss:s0",
             {"mh": "mh:a", "proxy_id": "px1", "to": "mss:s1",
              "new_proxy_id": "px2"}),
            (1.6, "proxy_create", "mss:s1", {"mh": "mh:a", "proxy_id": "px2"}),
            (2.0, "handoff_out", "mss:s0", {"mh": "mh:a", "to": "mss:s1"}),
            (2.1, "handoff_done", "mss:s1",
             {"mh": "mh:a", "old": "mss:s0", "duration": 0.1,
              "proxy_id": "px1"}),
        ]
        assert run_synthetic(PrefHandoverConsistency(), rows) == []


class TestOracle:
    def test_raise_immediately_mode(self):
        oracle = Oracle([ExactlyOnceDelivery()], raise_immediately=True)
        recorder = TraceRecorder()
        oracle.attach(recorder)
        recorder.record(1.0, "deliver", "mh:a", request_id="a-r1", delivery_id=1)
        with pytest.raises(InvariantViolation) as err:
            recorder.record(2.0, "deliver", "mh:a", request_id="a-r1",
                            delivery_id=2)
        assert err.value.invariant == "exactly_once_delivery"
        assert err.value.trace_slice  # carries the offending window

    def test_detach_stops_observing(self):
        oracle = Oracle([ExactlyOnceDelivery()])
        recorder = TraceRecorder()
        oracle.attach(recorder)
        recorder.record(1.0, "deliver", "mh:a", request_id="a-r1", delivery_id=1)
        oracle.detach()
        recorder.record(2.0, "deliver", "mh:a", request_id="a-r1", delivery_id=2)
        assert oracle.violations == []

    def test_summary_counts_by_invariant(self):
        violations = run_synthetic(NoLostResult(), [
            (1.0, "request", "mh:a", {"request_id": "a-r1", "service": "echo"}),
        ])
        assert violations  # sanity
        oracle = Oracle([NoLostResult()])
        assert oracle.summary() == "all invariants held"


class TestCleanIntegrationRun:
    def test_migrating_host_holds_all_invariants(self):
        world = make_world()
        oracle = Oracle().attach(world.recorder)
        world.add_server("echo", service_time=ConstantLatency(0.3))
        client = world.add_host("mh0", world.cells[0])
        host = world.hosts["mh0"]
        world.run(until=0.1)
        client.request("echo", {"n": 1})
        world.run(until=0.2)
        host.migrate_to(world.cells[1])     # migrate with the result in flight
        world.run(until=1.0)
        client.request("echo", {"n": 2})
        world.run(until=5.0)
        violations = oracle.finish()
        assert violations == []
        assert len(client.completed) == 2


class TestMutations:
    """Break a known protocol mechanism; the oracle must notice."""

    def test_suppressed_retransmission_loses_result(self, monkeypatch):
        # an update_currentloc that moves the pointer but "forgets" the
        # paper's re-send loop strands any result that missed the MH.
        def lazy_update(self, msg):
            self.currentloc = msg.new_mss

        monkeypatch.setattr(Proxy, "handle_update_currentloc", lazy_update)
        world = make_world()
        oracle = Oracle().attach(world.recorder)
        world.add_server("echo", service_time=ConstantLatency(1.0))
        client = world.add_host("mh0", world.cells[0])
        host = world.hosts["mh0"]
        world.run(until=0.2)
        client.request("echo", {"n": 1})
        world.run(until=0.5)
        host.deactivate()                    # result will miss the MH
        world.run(until=2.0)
        host.migrate_to(world.cells[1])      # move while asleep
        world.run(until=3.0)
        host.activate()                      # hand-off; update_currentloc
        world.run(until=30.0)
        violations = oracle.finish()
        assert "no_lost_result" in {v.invariant for v in violations}
        assert not client.completed

    def test_raw_ordering_breaks_causal_invariant(self):
        # The an6 ablation: raw wired delivery under latency jitter lets
        # relayed messages overtake their causal predecessors.
        from dataclasses import replace

        from repro.verify import FuzzConfig, generate_case, run_case

        case = generate_case(2, FuzzConfig(ordering="raw"))
        case = replace(case, profile=replace(case.profile, wired_jitter=0.008))
        result = run_case(case, "rdp")
        assert "causal_wired_order" in result.invariants_hit()
