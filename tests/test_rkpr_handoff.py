"""RKpR-flag edge cases around hand-off, plus pref-table and inbox
semantics the flag machinery depends on (paper, Sections 3.1/3.3)."""

from __future__ import annotations

from repro.core.protocol import AckMsg, DelPrefNoticeMsg, DeregMsg, RequestMsg
from repro.net.latency import ConstantLatency
from repro.stations.inbox import (
    PRIORITY_ACK,
    PRIORITY_HANDOFF,
    PRIORITY_NORMAL,
    Inbox,
    default_priority,
)
from repro.stations.pref import Pref, PrefTable
from repro.types import ProxyRef
from repro.verify import Oracle
from tests.conftest import make_world


class TestPrefTable:
    def test_ensure_is_idempotent(self):
        table = PrefTable()
        pref = table.ensure("mh:a")
        pref.rkpr = True
        assert table.ensure("mh:a") is pref
        assert len(table) == 1

    def test_install_resets_outstanding(self):
        # outstanding is explicitly NOT part of the hand-off payload: the
        # new respMss rebuilds it from the proxy's re-sends.
        table = PrefTable()
        old = table.ensure("mh:a")
        old.outstanding.add("a-r1")
        ref = ProxyRef(mss="mss:s0", proxy_id="px1")
        new = table.install("mh:a", ref, rkpr=True)
        assert new.ref == ref and new.rkpr
        assert new.outstanding == set()
        assert table.get("mh:a") is new

    def test_pop_missing_yields_empty_pref(self):
        pref = PrefTable().pop("mh:ghost")
        assert pref.ref is None and not pref.rkpr and not pref.outstanding

    def test_clear_proxy_drops_flags(self):
        pref = Pref(ref=ProxyRef(mss="mss:s0", proxy_id="px1"), rkpr=True,
                    outstanding={"a-r1"})
        pref.clear_proxy()
        assert pref.ref is None and not pref.rkpr and not pref.outstanding
        assert not pref.has_proxy


class TestInboxPriorities:
    @staticmethod
    def _inbox(sim, order, **kwargs):
        return Inbox(sim, lambda m: order.append(m.kind),
                     proc_delay=0.01, **kwargs)

    def test_ack_overtakes_queued_dereg(self, sim):
        # Section 3.1: a queued Ack must be forwarded before the dereg
        # that would make the MSS start ignoring the MH.
        order = []
        inbox = self._inbox(sim, order)
        inbox.push(RequestMsg(mh="mh:a", request_id="a-r0", service="echo"))
        inbox.push(DeregMsg(mh="mh:a", seq=1))
        inbox.push(AckMsg(mh="mh:a", request_id="a-r1", delivery_id=1))
        sim.run_until_idle()
        assert order == ["request", "ack", "dereg"]

    def test_ack_priority_disabled_is_fifo(self, sim):
        order = []
        inbox = self._inbox(sim, order, ack_priority=False)
        inbox.push(RequestMsg(mh="mh:a", request_id="a-r0", service="echo"))
        inbox.push(DeregMsg(mh="mh:a", seq=1))
        inbox.push(AckMsg(mh="mh:a", request_id="a-r1", delivery_id=1))
        sim.run_until_idle()
        assert order == ["request", "dereg", "ack"]

    def test_zero_delay_is_synchronous(self, sim):
        order = []
        inbox = Inbox(sim, lambda m: order.append(m.kind), proc_delay=0.0)
        inbox.push(DeregMsg(mh="mh:a", seq=1))
        assert order == ["dereg"] and inbox.depth == 0

    def test_default_priority_classes(self):
        assert default_priority(
            AckMsg(mh="m", request_id="r", delivery_id=1)) == PRIORITY_ACK
        assert default_priority(DeregMsg(mh="m", seq=0)) == PRIORITY_HANDOFF
        assert default_priority(
            RequestMsg(mh="m", request_id="r", service="s")) == PRIORITY_NORMAL


class TestRkprThroughHandoff:
    def test_rkpr_survives_migration_and_kills_proxy_at_new_mss(self):
        """The del-pref flag set at the old respMss rides the hand-off
        payload: after the MH resurfaces elsewhere, the re-sent result's
        Ack at the NEW respMss completes the del-proxy handshake."""
        world = make_world()
        oracle = Oracle().attach(world.recorder)
        world.add_server("echo", service_time=ConstantLatency(1.0))
        client = world.add_host("mh0", world.cells[0])
        host = world.hosts["mh0"]
        s0 = world.stations[world.cells[0]]
        world.run(until=0.2)
        client.request("echo", {"n": 1})
        world.run(until=0.5)
        host.deactivate()                   # the only result misses the MH
        world.run(until=2.0)
        pref = s0.prefs.get(host.node_id)
        assert pref is not None and pref.rkpr  # del-pref arrived at old MSS
        assert pref.outstanding             # ... with the Ack still missing
        host.migrate_to(world.cells[1])     # del-pref pending during hand-off
        host.activate()
        world.run(until=10.0)
        s1 = world.stations[world.cells[1]]
        assert host.node_id in s1.local_mhs
        assert len(client.completed) == 1
        assert world.live_proxy_count() == 0  # rkpr honored at the new MSS
        assert oracle.finish() == []

    def test_new_request_invalidates_pending_rkpr(self):
        """Section 3.3: any new request clears Ready-to-Kill-pref, so the
        in-flight Ack of the previous result must NOT delete the proxy."""
        world = make_world(ack_delay=0.2)    # widen the rkpr/ack window
        oracle = Oracle().attach(world.recorder)
        world.add_server("echo", service_time=ConstantLatency(1.0))
        client = world.add_host("mh0", world.cells[0])
        world.run(until=0.2)
        client.request("echo", {"n": 1})
        # Result arrives ~t=1.22, rkpr set; the delayed Ack leaves ~t=1.42.
        world.run(until=1.3)
        assert world.live_proxy_count() == 1
        client.request("echo", {"n": 2})     # clears rkpr before the Ack
        world.run(until=2.0)
        # First Ack processed without del-proxy: the proxy must survive to
        # serve the second request.
        assert world.live_proxy_count() == 1
        world.run(until=10.0)
        assert len(client.completed) == 2
        assert world.live_proxy_count() == 0
        assert oracle.finish() == []

    def test_del_pref_notice_for_departed_mh_is_ignored(self):
        """A del-pref notice that loses the race against the MH's own
        hand-off reaches an MSS that no longer hosts the MH; it must be
        dropped (counted), not resurrect a pref for the departed MH."""
        world = make_world()
        world.add_server("echo", service_time=ConstantLatency(0.2))
        client = world.add_host("mh0", world.cells[0])
        host = world.hosts["mh0"]
        s0 = world.stations[world.cells[0]]
        world.run(until=0.2)
        client.request("echo", {"n": 1})
        world.run(until=2.0)
        host.migrate_to(world.cells[1])
        world.run(until=5.0)
        assert host.node_id not in s0.local_mhs
        before = world.metrics.count("del_pref_for_absent_mh")
        stale = DelPrefNoticeMsg(
            mh=host.node_id, proxy_ref=ProxyRef(mss=s0.node_id,
                                                proxy_id="px-stale"))
        s0._on_del_pref_notice(stale)
        assert world.metrics.count("del_pref_for_absent_mh") == before + 1
        assert s0.prefs.get(host.node_id) is None  # nothing resurrected
