"""Tests for vector clocks."""

from __future__ import annotations

from repro.net.vectorclock import VectorClock


def test_tick_and_get():
    vc = VectorClock()
    assert vc.get("a") == 0
    vc.tick("a")
    vc.tick("a")
    vc.tick("b")
    assert vc.get("a") == 2
    assert vc.get("b") == 1


def test_partial_order():
    a = VectorClock({"p": 1})
    b = VectorClock({"p": 2})
    assert a <= b
    assert a < b
    assert not b <= a


def test_concurrency():
    a = VectorClock({"p": 1})
    b = VectorClock({"q": 1})
    assert a.concurrent_with(b)
    assert not a <= b and not b <= a


def test_dominates_with_missing_entries():
    big = VectorClock({"p": 2, "q": 1})
    small = VectorClock({"p": 1})
    assert big.dominates(small)
    assert not small.dominates(big)


def test_empty_clock_dominated_by_all():
    assert VectorClock().dominates(VectorClock())
    assert VectorClock({"p": 1}).dominates(VectorClock())


def test_merge_is_pointwise_max():
    a = VectorClock({"p": 3, "q": 1})
    b = VectorClock({"q": 4, "r": 2})
    a.merge(b)
    assert a == VectorClock({"p": 3, "q": 4, "r": 2})


def test_merged_does_not_mutate():
    a = VectorClock({"p": 1})
    b = VectorClock({"q": 1})
    c = a.merged(b)
    assert a == VectorClock({"p": 1})
    assert c == VectorClock({"p": 1, "q": 1})


def test_copy_is_independent():
    a = VectorClock({"p": 1})
    b = a.copy()
    b.tick("p")
    assert a.get("p") == 1
    assert b.get("p") == 2


def test_equality_ignores_zero_entries():
    assert VectorClock({"p": 0}) == VectorClock()


def test_hashable():
    assert hash(VectorClock({"p": 1})) == hash(VectorClock({"p": 1}))
    assert len({VectorClock({"p": 1}), VectorClock({"p": 1})}) == 1
