"""Tests for the mobile-host state machine and the client API."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.net.latency import ConstantLatency
from repro.servers.echo import ComputeServer, EchoServer, ManualServer
from repro.types import MhState

from tests.conftest import make_world


def test_join_required_before_requests(world):
    client = world.add_host("m", world.cells[0], join=False)
    with pytest.raises(ProtocolError):
        client.host.send_request("echo", 1)


def test_double_join_rejected(world):
    world.add_host("m", world.cells[0])
    with pytest.raises(ProtocolError):
        world.hosts["m"].join(world.cells[1])


def test_requests_queued_until_registered(world):
    world.add_server("echo")
    client = world.add_host("m", world.cells[0])
    # Issue immediately: the join confirmation has not arrived yet.
    pending = client.request("echo", 42)
    assert not world.hosts["m"].registered
    world.run_until_idle()
    assert pending.done
    assert pending.result == 42


def test_migrate_to_same_cell_is_noop(world):
    world.add_host("m", world.cells[0])
    world.run_until_idle()
    world.hosts["m"].migrate_to(world.cells[0])
    assert world.metrics.count("mh_migrations") == 0


def test_deactivate_activate_cycle(world):
    world.add_host("m", world.cells[0])
    world.run_until_idle()
    host = world.hosts["m"]
    host.deactivate()
    assert host.state is MhState.INACTIVE
    assert not host.registered
    with pytest.raises(ProtocolError):
        host.deactivate()
    host.activate()
    assert host.state is MhState.ACTIVE
    world.run_until_idle()
    assert host.registered


def test_activate_while_active_rejected(world):
    world.add_host("m", world.cells[0])
    with pytest.raises(ProtocolError):
        world.hosts["m"].activate()


def test_cannot_send_while_inactive(world):
    client = world.add_host("m", world.cells[0])
    world.run_until_idle()
    world.hosts["m"].deactivate()
    with pytest.raises(ProtocolError):
        client.host.send_request("echo", 1)


def test_leave_with_unacked_results_rejected(world):
    """Assumption 6: leave only after acknowledging everything."""
    server = world.add_server("manual", ManualServer)
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    host.ack_delay = 10.0  # the Ack stays pending for a long while
    p = client.request("manual", 1)
    world.run(until=0.3)
    server.release(p.request_id)
    world.run(until=0.4)  # result delivered, Ack still pending
    with pytest.raises(ProtocolError):
        host.leave()
    world.run_until_idle()
    host.leave()
    assert host.state is MhState.LEFT


def test_duplicate_results_filtered_but_acked(world):
    server = world.add_server("manual", ManualServer)
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    p = client.request("manual", "x")
    world.run(until=0.3)
    host.deactivate()           # miss the first delivery attempt
    server.release(p.request_id)
    world.run(until=1.0)
    host.activate()             # triggers redelivery
    world.run_until_idle()
    assert p.done
    assert len(p.results) == 1  # the app saw it once
    assert host.duplicate_deliveries == 0  # first attempt never arrived
    # Now force an actual duplicate: deliver, drop the ack, reactivate.
    host.ack_delay = 0.05
    p2 = client.request("manual", "y")
    world.run(until=world.sim.now + 0.3)
    server.release(p2.request_id)
    world.run(until=world.sim.now + 0.02)   # result delivered, ack pending
    host.deactivate()                        # pending ack dropped
    world.run(until=world.sim.now + 0.5)
    host.ack_delay = 0.0
    host.activate()                          # proxy re-sends
    world.run_until_idle()
    assert p2.done
    assert host.duplicate_deliveries == 0 or len(p2.results) == 1


def test_registration_retries_under_loss():
    world = make_world(wireless_loss=0.4, seed=5)
    world.add_server("echo")
    client = world.add_host("m", world.cells[0], retry_interval=2.0)
    pending = client.request("echo", 7)
    world.run(until=60.0)
    assert world.hosts["m"].registered
    assert pending.done
    world.run_until_idle()


def test_client_latency_accounting(world):
    world.add_server("slow", EchoServer, service_time=ConstantLatency(0.5))
    client = world.add_host("m", world.cells[0])
    p = client.request("slow", 1)
    world.run_until_idle()
    assert p.latency == pytest.approx(0.5, abs=0.2)
    assert client.latencies() == [p.latency]
    assert client.outstanding == []
    assert client.completed == [p]


def test_client_result_property_raises_before_done(world):
    world.add_server("manual", ManualServer)
    client = world.add_host("m", world.cells[0])
    p = client.request("manual", 1)
    with pytest.raises(ProtocolError):
        _ = p.result
    world.run_until_idle


def test_compute_server_applies_function(world):
    world.add_server("square", ComputeServer)
    client = world.add_host("m", world.cells[0])
    p = client.request("square", 12)
    world.run_until_idle()
    assert p.result == 144


def test_client_callback_invoked_once(world):
    world.add_server("echo")
    client = world.add_host("m", world.cells[0])
    calls = []
    client.request("echo", 5, on_result=calls.append)
    world.run_until_idle()
    assert calls == [5]


def test_client_retry_stops_after_completion(world):
    world.add_server("echo")
    client = world.add_host("m", world.cells[0], retry_interval=0.5)
    p = client.request("echo", 1)
    world.run_until_idle()
    assert p.done
    assert world.metrics.count("mh_request_retries") == 0 or p.done
    # After completion nothing is scheduled: the world goes idle (the
    # run_until_idle above would have raised otherwise).
