"""Tests for the ``observe`` subcommand and ``bench --obs``."""

from __future__ import annotations

import json

from repro.experiments.cli import main


def test_observe_smoke_accounts_and_exports_prometheus(tmp_path, capsys):
    out = tmp_path / "metrics.prom"
    assert main(["observe", "--preset", "smoke",
                 "--export", "prom", "--out", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "observe[smoke]" in printed
    assert "100% accounted" in printed
    assert str(out) in printed

    text = out.read_text()
    families = [line for line in text.splitlines()
                if line.startswith("# TYPE ")]
    assert len(families) >= 10
    assert any("rdp_request_completion_time histogram" in line
               for line in families)
    assert any("rdp_net_messages_sent_total counter" in line
               for line in families)


def test_observe_json_export(tmp_path):
    out = tmp_path / "metrics.json"
    assert main(["observe", "--preset", "smoke", "--quiet",
                 "--export", "json", "--out", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert "sim_time" in doc
    sent = doc["families"]["rdp_net_messages_sent_total"]
    assert sent["type"] == "counter"
    assert sent["label_names"] == ["net", "kind"]
    assert sent["samples"]


def test_bench_obs_adds_metrics_section(tmp_path):
    out = tmp_path / "bench.json"
    assert main(["bench", "--preset", "smoke", "--obs", "--quiet",
                 "--out", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert set(doc) == {"schema", "scenario", "determinism", "timing",
                        "metrics"}
    metrics = doc["metrics"]
    assert len(metrics) >= 10
    # The digest must agree with the pinned determinism section: same
    # hub, two views.
    det = doc["determinism"]
    assert sum(metrics["rdp_net_messages_sent_total"].values()) == \
        det["messages"]
    assert metrics["rdp_handoffs_completed_total"] == det["handoffs"]
    assert metrics["rdp_net_messages_dropped_total"] != {}
