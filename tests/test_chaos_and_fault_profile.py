"""Chaos scenarios and the fuzzer's fault profile.

Two standing guarantees ride on these tests:

* **The transport is what makes RDP survive a faulty fabric** — the
  pinned chaos scenario runs clean with the reliable link and visibly
  breaks without it (both directions asserted, so neither the faults nor
  the recovery can silently rot).
* **The fault-profile fuzzer still has teeth** — a deliberately broken
  retransmit timer is caught and shrunk (mutation test).
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import chaos
from repro.experiments.cli import main
from repro.net.reliable import ReliableLink
from repro.verify.fuzz import (
    FuzzConfig,
    generate_case,
    load_case,
    run_campaign,
    run_case,
)

SMOKE = chaos.PRESETS["smoke"]


@pytest.fixture(scope="module")
def smoke_result():
    return chaos.run_chaos(SMOKE, reliable=True)


def test_chaos_smoke_clean_with_reliable_transport(smoke_result):
    det = smoke_result["determinism"]
    assert det["violations"] == 0
    assert det["requests"] > 0
    assert det["delivered"] == det["requests"]
    # The scenario genuinely exercised every fault flavour.
    wired = det["wired"]
    assert wired["drops_loss"] > 0
    assert wired["drops_partition"] > 0
    assert wired["dup_injected"] > 0
    assert wired["transport"]["retransmissions"] > 0
    assert det["crashes"] == 1 and det["restarts"] == 1


def test_chaos_smoke_deterministic(smoke_result):
    again = chaos.run_chaos(SMOKE, reliable=True)
    a, b = dict(smoke_result), dict(again)
    a.pop("timing"), b.pop("timing")
    assert a == b


def test_chaos_smoke_breaks_without_transport():
    """The ablation direction: same faults, raw fabric -> the oracle
    must catch real protocol violations (otherwise the fault injection
    is not actually testing anything)."""
    result = chaos.run_chaos(SMOKE, reliable=False)
    det = result["determinism"]
    assert det["violations"] > 0
    assert det["delivered"] < det["requests"]
    assert det["wired"]["transport"] is None


def test_chaos_cli_writes_report(tmp_path, capsys):
    out = tmp_path / "CHAOS_report.json"
    rc = main(["chaos", "--preset", "smoke", "--out", str(out), "--quiet"])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["schema"] == 2
    assert doc["scenario"]["preset"] == "smoke"
    assert doc["scenario"]["transport"] == "sr"
    assert doc["determinism"]["violations"] == 0


def test_chaos_transport_ablation_block(smoke_result):
    """The acceptance-criterion block: selective repeat must beat the
    stop-and-wait baseline on goodput and p99 delivery latency across
    the 5–20% wired-loss sweep (ties allowed on goodput — at low loss
    both transports deliver everything issued)."""
    ablation = smoke_result["determinism"]["transport_ablation"]
    assert ablation["losses"] == [0.05, 0.10, 0.20]
    rows = {(r["transport"], r["loss"]): r for r in ablation["rows"]}
    assert len(rows) == 6
    for loss in ablation["losses"]:
        legacy, sr = rows[("legacy", loss)], rows[("sr", loss)]
        assert sr["delivered"] > 0 and legacy["delivered"] > 0
        assert sr["goodput"] >= legacy["goodput"]
        assert sr["latency_p99"] < legacy["latency_p99"]
    # The sweep gets harder as loss grows, and SR's edge must be real
    # somewhere, not a wall of ties.
    assert any(rows[("sr", loss)]["goodput"] > rows[("legacy", loss)]["goodput"]
               for loss in ablation["losses"])


def test_chaos_wireless_ablation_block(smoke_result):
    """The last-mile acceptance criterion: with the full robustness
    stack (durable log, custody, redelivery) every issued request is
    delivered despite three mid-flight MH crashes and cell blackouts;
    amnesiac recovery with custody/redelivery disabled shows measurable
    loss."""
    ablation = smoke_result["determinism"]["wireless_ablation"]
    arms = {arm["arm"]: arm for arm in ablation["arms"]}
    assert set(arms) == {"recovery", "no_recovery"}
    recovery, bare = arms["recovery"], arms["no_recovery"]
    assert recovery["requests"] == bare["requests"] > 0
    assert recovery["delivery_ratio"] == 1.0
    assert bare["delivery_ratio"] < 1.0
    # The machinery must actually have run, not merely been configured.
    assert recovery["recoveries"] == len(ablation["crash_schedule"])
    assert recovery["redeliveries"] > 0
    assert recovery["custody_expired"] == 0
    # And the bare arm must show WHY it lost: expired custody.
    assert bare["custody_expired"] > 0 and bare["redeliveries"] == 0


def test_chaos_legacy_transport_still_survives():
    """--transport legacy is the measured baseline, not a tombstone: the
    full chaos scenario must still run clean under it."""
    result = chaos.run_chaos(SMOKE, reliable=True, transport="legacy")
    det = result["determinism"]
    assert det["violations"] == 0
    assert det["delivered"] == det["requests"] > 0
    assert result["scenario"]["transport"] == "legacy"
    assert det["wired"]["transport"]["retransmissions"] > 0


# -- fuzzer fault profile ----------------------------------------------------

def test_fault_profile_extends_op_pool():
    plain = generate_case(11, FuzzConfig())
    faulty = generate_case(11, FuzzConfig(fault_profile=True))
    assert not any(op.op in ("crash", "partition", "wired_loss")
                   for op in plain.ops)
    assert plain.profile.wired_loss == 0.0 and plain.profile.wired_dup == 0.0
    assert faulty.profile.wired_loss > 0.0
    ops = {op.op for seed in range(20)
           for op in generate_case(seed, FuzzConfig(fault_profile=True)).ops}
    assert {"crash", "partition", "wired_loss"} <= ops


def test_fault_profile_mini_campaign_clean():
    campaign = run_campaign(seeds=25, base_seed=0,
                            config=FuzzConfig(fault_profile=True),
                            shrink=False)
    assert campaign.ok, [f.invariants for f in campaign.failures]
    assert campaign.requests_delivered == campaign.requests_issued > 0


def test_mutation_broken_retransmit_timer_caught_and_shrunk(
        tmp_path, monkeypatch):
    """Disable the transport's retransmit path: under wired loss the
    causally-ordered fabric wedges and the oracle must notice.  The
    failure is shrunk and the saved repro replays."""
    monkeypatch.setattr(ReliableLink, "_expire",
                        lambda self, pending: None)
    campaign = run_campaign(seeds=8, base_seed=0,
                            config=FuzzConfig(fault_profile=True),
                            shrink=True, out_dir=tmp_path)
    assert not campaign.ok
    failure = campaign.failures[0]
    assert failure.invariants  # named, not just "something broke"
    assert failure.repro_path is not None and failure.repro_path.exists()
    original = generate_case(failure.seed, FuzzConfig(fault_profile=True))
    assert len(failure.shrunk.ops) <= len(original.ops)
    case, protocol = load_case(failure.repro_path)
    replay = run_case(case, protocol)
    assert replay.invariants_hit() == failure.invariants


def test_mutation_recovery_without_dedup_caught_and_shrunk(
        tmp_path, monkeypatch):
    """Strip the dedup restore out of the MH recovery handshake: a
    result the custody chase redelivers after an mh_crash is accepted
    twice, the exactly-once invariant fires, and ddmin shrinks the
    failing schedule to a replayable repro."""
    from repro.hosts.mobile_host import MobileHost

    original = MobileHost.recover

    def forgetful(self, cell, amnesia=False):
        original(self, cell, amnesia=amnesia)
        self._delivered_requests = set()   # forget the log's dedup set

    monkeypatch.setattr(MobileHost, "recover", forgetful)
    campaign = run_campaign(seeds=12, base_seed=0,
                            config=FuzzConfig(fault_profile=True),
                            shrink=True, out_dir=tmp_path)
    assert not campaign.ok
    failure = next(f for f in campaign.failures
                   if "exactly_once_delivery" in f.invariants)
    original_case = generate_case(failure.seed, FuzzConfig(fault_profile=True))
    assert len(failure.shrunk.ops) <= len(original_case.ops)
    case, protocol = load_case(failure.repro_path)
    assert run_case(case, protocol).invariants_hit() == failure.invariants


def test_mutation_healthy_code_passes_saved_shape():
    """Control arm for the mutation test: the same seeds are clean when
    the retransmit timer works."""
    campaign = run_campaign(seeds=8, base_seed=0,
                            config=FuzzConfig(fault_profile=True),
                            shrink=False)
    assert campaign.ok
