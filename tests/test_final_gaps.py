"""Final negative-path and guard tests."""

from __future__ import annotations

import pytest

from repro.analysis.verify import VerificationReport, check_proxy_reachability
from repro.config import WorldConfig
from repro.errors import ConfigError

from tests.conftest import make_world


def test_duplicate_host_name_rejected(world):
    world.add_host("m", world.cells[0])
    with pytest.raises(ConfigError):
        world.add_host("m", world.cells[1])


def test_duplicate_server_name_rejected(world):
    world.add_server("echo")
    with pytest.raises(ConfigError):
        world.add_server("echo")


def test_grid_config_validation():
    with pytest.raises(ConfigError):
        WorldConfig(topology="grid", grid_width=0)
    with pytest.raises(ConfigError):
        WorldConfig(topology="ring", n_cells=2)
    WorldConfig(topology="ring", n_cells=3)  # boundary is fine


def test_proxy_reachability_detects_stranded_state(world):
    """Manually strand a busy proxy: the invariant must fire."""
    from repro.servers.echo import ManualServer

    world.add_server("manual", ManualServer)
    client = world.add_host("m", world.cells[0])
    client.request("manual", 1)
    world.run(until=1.0)
    station = world.station(world.cells[0])
    # Cut the pref while the proxy still has pending work.
    pref = station.prefs.get(world.hosts["m"].node_id)
    pref.ref = None
    report = VerificationReport()
    check_proxy_reachability(world, report)
    assert not report.ok
    assert "referenced by no pref" in report.violations[0]


def test_proxy_reachability_ignores_mid_handoff(world):
    """A busy proxy whose MH is between registrations is not stranded."""
    from repro.servers.echo import ManualServer

    world.add_server("manual", ManualServer)
    client = world.add_host("m", world.cells[0])
    client.request("manual", 1)
    world.run(until=1.0)
    station = world.station(world.cells[0])
    mh = world.hosts["m"].node_id
    station.local_mhs.discard(mh)   # simulate the hand-off gap
    report = VerificationReport()
    check_proxy_reachability(world, report)
    assert report.ok


def test_timeline_reports_crash_and_move():
    world = make_world(n_cells=8, proxy_migrate_distance=3.0)
    from repro.analysis.timeline import extract_timeline
    from repro.servers.multicast import GroupServer

    world.add_server("groups", GroupServer)
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    client.subscribe("groups", {"group": "g"})
    world.run(until=1.0)
    for i in range(1, 6):
        host.migrate_to(world.cells[i])
        world.run(until=world.sim.now + 1.0)
    world.station(world.cells[0]).crash_and_restart()
    world.run(until=world.sim.now + 1.0)
    texts = [e.text for e in extract_timeline(world.recorder)]
    assert any(t.startswith("proxy_move") for t in texts)
    assert any("CRASH" in t for t in texts)
