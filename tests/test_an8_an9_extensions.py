"""Tests for the AN8 (Ack priority) and AN9 (retention) mechanisms."""

from __future__ import annotations

import pytest

from repro.experiments.an8_ack_priority import run_priority
from repro.experiments.an9_retention import run_retention
from repro.servers.echo import ManualServer

from tests.conftest import make_world


# -- retention mechanics (unit-ish, scripted world) ---------------------------

def test_retention_redelivers_locally_without_proxy_resend():
    world = make_world(retain_results=True)
    server = world.add_server("manual", ManualServer)
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    p = client.request("manual", "x")
    world.run(until=0.3)
    host.deactivate()
    server.release(p.request_id)
    world.run(until=1.0)
    assert not p.done
    assert world.metrics.count("results_retained") == 1
    host.activate()
    world.run_until_idle()
    assert p.done
    assert world.metrics.count("retained_redeliveries") == 1
    # The deferred update still goes out (AN4 bound intact), but no
    # wired retransmission was needed.
    assert world.metrics.count("proxy_retransmissions") == 0
    assert world.metrics.count("update_currentloc_sent") == 1
    assert world.live_proxy_count() == 0


def test_retention_disabled_uses_proxy_resend():
    world = make_world(retain_results=False)
    server = world.add_server("manual", ManualServer)
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    p = client.request("manual", "x")
    world.run(until=0.3)
    host.deactivate()
    server.release(p.request_id)
    world.run(until=1.0)
    host.activate()
    world.run_until_idle()
    assert p.done
    assert world.metrics.count("results_retained") == 0
    assert world.metrics.count("proxy_retransmissions") == 1


def test_retained_results_dropped_on_handoff():
    """RDP's pref-only hand-off: retention must not add residue."""
    world = make_world(retain_results=True)
    server = world.add_server("manual", ManualServer)
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    p = client.request("manual", "x")
    world.run(until=0.3)
    host.deactivate()
    server.release(p.request_id)
    world.run(until=1.0)
    # Wake in a *different* cell: hand-off, not reactivation.
    host.migrate_to(world.cells[1])
    host.activate()
    world.run_until_idle()
    assert p.done
    s0 = world.station(world.cells[0])
    assert host.node_id not in s0._retained
    # Delivery came from the proxy's re-send via the new MSS.
    assert world.metrics.count("proxy_retransmissions") >= 1


def test_retention_fallback_timer_releases_update():
    """If the MH naps again before acking the redelivery, the deferred
    update must still go out eventually (liveness)."""
    world = make_world(retain_results=True, ack_delay=0.05)
    server = world.add_server("manual", ManualServer)
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    p = client.request("manual", "x")
    world.run(until=0.3)
    host.deactivate()
    server.release(p.request_id)
    world.run(until=1.0)
    host.activate()
    world.run(until=1.02)   # redelivered; ack pending (50 ms)
    host.deactivate()        # nap again: the pending ack dies
    world.run(until=3.0)
    assert world.metrics.count("update_currentloc_sent") >= 1  # fallback fired
    host.activate()
    world.run_until_idle()
    assert p.done


# -- experiment shapes -----------------------------------------------------------

def test_an8_priority_reduces_wasted_retransmissions():
    # Single seeds are noisy; aggregate a few.
    on_ignored = off_ignored = 0
    for seed in range(3):
        on = run_priority(True, n_hosts=10, requests_per_host=12, seed=seed)
        off = run_priority(False, n_hosts=10, requests_per_host=12, seed=seed)
        assert on.delivered == on.requests
        assert off.delivered == off.requests
        on_ignored += on.acks_ignored
        off_ignored += off.acks_ignored
    assert on_ignored < off_ignored


def test_an9_retention_shape():
    off = run_retention(False, n_hosts=4, duration=200.0, seed=0)
    on = run_retention(True, n_hosts=4, duration=200.0, seed=0)
    assert on.delivered == on.requests
    assert off.delivered == off.requests
    assert on.proxy_retransmissions < off.proxy_retransmissions
    assert on.retained > 0
