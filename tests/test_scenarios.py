"""Tests reproducing the paper's figures (see DESIGN.md: FIG1/FIG3/FIG4)."""

from __future__ import annotations

import pytest

from repro.analysis.sequence import subsequence_present
from repro.analysis.verify import check_all
from repro.experiments.scenarios import (
    FIG3_EXPECTED_KINDS,
    FIG4_EXPECTED_KINDS,
    run_fig1,
    run_fig3,
    run_fig4,
)


@pytest.fixture(scope="module")
def fig1():
    return run_fig1()


@pytest.fixture(scope="module")
def fig3():
    return run_fig3()


@pytest.fixture(scope="module")
def fig4():
    return run_fig4()


# -- Figure 1 -----------------------------------------------------------------

def test_fig1_query_answered_in_destination_cell(fig1):
    assert fig1.facts["query_done"]
    assert fig1.facts["mh1_final_cell"] == "cell2"
    assert fig1.facts["query_result"] == [{"ask": "traffic"}]


def test_fig1_mcast_reaches_group_145(fig1):
    assert fig1.facts["mcast_done"]
    assert fig1.facts["mcast_receivers"] == ["mh1", "mh4", "mh5"]


def test_fig1_all_proxies_retired(fig1):
    assert fig1.facts["live_proxies"] == 0


def test_fig1_invariants(fig1):
    report = check_all(fig1.world, expect_quiescent=True,
                       expect_no_proxies=True)
    assert report.ok, report.violations


# -- Figure 3 -----------------------------------------------------------------

def test_fig3_message_sequence_matches_paper(fig3):
    assert subsequence_present(fig3.kinds(), FIG3_EXPECTED_KINDS), fig3.kinds()


def test_fig3_result_chases_mh_with_one_retransmission(fig3):
    assert fig3.facts["done"]
    assert fig3.facts["result"] == ["answer"]
    assert fig3.facts["retransmissions"] == 1
    assert fig3.facts["missed_forwards"] == 1


def test_fig3_single_proxy_created_and_deleted(fig3):
    assert fig3.facts["proxies_created"] == 1
    assert fig3.facts["live_proxies"] == 0


def test_fig3_no_duplicate_deliveries(fig3):
    assert fig3.facts["duplicates_at_mh"] == 0


def test_fig3_invariants(fig3):
    report = check_all(fig3.world, expect_quiescent=True,
                       expect_no_proxies=True)
    assert report.ok, report.violations


# -- Figure 4 -----------------------------------------------------------------

def test_fig4_message_sequence_matches_paper(fig4):
    assert subsequence_present(fig4.kinds(), FIG4_EXPECTED_KINDS), fig4.kinds()


def test_fig4_special_del_pref_message_sent_once(fig4):
    assert fig4.facts["del_pref_notices"] == 1


def test_fig4_single_proxy_serves_all_three_requests(fig4):
    assert fig4.facts["all_done"]
    assert fig4.facts["proxies_created"] == 1
    assert fig4.facts["proxies_deleted"] == 1
    assert fig4.facts["live_proxies"] == 0


def test_fig4_ack_a_carries_del_proxy_false(fig4):
    """requestB slipped in before AckA, so RKpR was reset and the first
    fwd_ack must not carry del-proxy."""
    ack_forwards = [e for e in fig4.chart if e.kind == "ack_forward"]
    assert len(ack_forwards) == 3
    assert "del-proxy" not in ack_forwards[0].detail
    assert "del-proxy" not in ack_forwards[1].detail
    assert "del-proxy" in ack_forwards[2].detail


def test_fig4_results_b_c_forwarded_without_del_pref(fig4):
    forwards = [e for e in fig4.chart if e.kind == "result_forward"]
    assert len(forwards) == 3
    assert "del-pref" in forwards[0].detail      # resultA: sole pending
    assert "del-pref" not in forwards[1].detail  # resultB: {B, C} pending
    assert "del-pref" not in forwards[2].detail  # resultC: {B, C} pending


def test_fig4_invariants(fig4):
    report = check_all(fig4.world, expect_quiescent=True,
                       expect_no_proxies=True)
    assert report.ok, report.violations
