"""Tests for RNG streams and trace recording."""

from __future__ import annotations

from repro.sim import RngStreams, TraceRecorder


def test_same_name_returns_same_stream():
    streams = RngStreams(seed=7)
    assert streams.stream("a") is streams.stream("a")


def test_streams_are_reproducible_across_instances():
    a = RngStreams(seed=7).stream("mobility")
    b = RngStreams(seed=7).stream("mobility")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_are_independent():
    streams = RngStreams(seed=7)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_different_seeds_differ():
    a = RngStreams(seed=1).stream("x").random()
    b = RngStreams(seed=2).stream("x").random()
    assert a != b


def test_adding_stream_does_not_perturb_existing():
    s1 = RngStreams(seed=3)
    first = s1.stream("a").random()
    s2 = RngStreams(seed=3)
    s2.stream("zzz")  # extra consumer
    assert s2.stream("a").random() == first


def test_spawn_derives_child_seed():
    parent = RngStreams(seed=5)
    child1 = parent.spawn("rep1")
    child2 = parent.spawn("rep2")
    assert child1.seed != child2.seed
    assert RngStreams(seed=5).spawn("rep1").seed == child1.seed


def test_recorder_records_and_filters():
    rec = TraceRecorder()
    rec.record(1.0, "send", "n1", msg="request")
    rec.record(2.0, "recv", "n2", msg="request")
    rec.record(3.0, "send", "n1", msg="ack")
    assert len(rec) == 3
    assert [r.time for r in rec.filter(kind="send")] == [1.0, 3.0]
    assert rec.filter(node="n2")[0].get("msg") == "request"
    assert rec.filter(kind="send", msg="ack")[0].time == 3.0


def test_recorder_disabled_is_noop():
    rec = TraceRecorder(enabled=False)
    rec.record(1.0, "send", "n1")
    assert len(rec) == 0
    assert rec.counts == {}
    assert not rec.wants("send")


def test_recorder_kind_whitelist():
    # counts must agree with the kept records: filtered-out kinds are
    # neither stored nor counted.
    rec = TraceRecorder(kinds={"send"})
    rec.record(1.0, "send", "n1")
    rec.record(1.0, "recv", "n2")
    assert len(rec) == 1
    assert rec.counts == {"send": 1}
    assert rec.wants("send") and not rec.wants("recv")


def test_recorder_enabled_counts_match_records():
    rec = TraceRecorder()
    rec.record(1.0, "send", "n1")
    rec.record(2.0, "send", "n1")
    rec.record(3.0, "recv", "n2")
    assert rec.counts == {"send": 2, "recv": 1}
    assert rec.counts["send"] == len(rec.filter(kind="send"))
    assert rec.wants("send") and rec.wants("anything")


def test_recorder_lazy_detail_only_evaluated_when_kept():
    calls = []

    def describe():
        calls.append(1)
        return "expensive"

    disabled = TraceRecorder(enabled=False)
    disabled.record(1.0, "send", "n1", detail=describe)
    filtered = TraceRecorder(kinds={"recv"})
    filtered.record(1.0, "send", "n1", detail=describe)
    assert calls == []

    kept = TraceRecorder()
    kept.record(1.0, "send", "n1", detail=describe)
    assert calls == [1]
    assert kept.records[0].get("detail") == "expensive"


def test_recorder_sink_callback():
    seen = []
    rec = TraceRecorder(sink=seen.append)
    rec.record(1.0, "deliver", "mh")
    assert len(seen) == 1 and seen[0].kind == "deliver"


def test_recorder_clear():
    rec = TraceRecorder()
    rec.record(1.0, "send", "n1")
    rec.clear()
    assert len(rec) == 0 and rec.counts == {}
