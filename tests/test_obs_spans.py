"""Delivery-span reconstruction and observability non-interference.

Three layers:

* synthetic traces — the :class:`SpanBuilder` pairing/attribution rules
  on hand-written records;
* the pinned fuzz corpus — every replayed case must reconstruct exactly
  one span per issued client request, agree with the client-side
  delivery counts and the proxy retransmission metric;
* non-interference — running a scenario with the span recorder fully on
  must leave the simulation event-identical to a fully disabled run, and
  the monitor's sent/received families must stay in parity.
"""

from __future__ import annotations

import itertools
from pathlib import Path

import pytest

from repro.experiments.bench import BenchPreset, build_config, run_scenario
from repro.instruments import Instruments
from repro.obs import SpanBuilder, digest
from repro.sim import TraceRecorder
from repro.sim.tracing import TraceRecord
from repro.verify import fuzz, load_case

from tests.conftest import make_world

CORPUS = Path(__file__).parent / "corpus"
SEED_FILES = sorted(CORPUS.glob("*.json"))


def rec(time: float, kind: str, node: str, **fields) -> TraceRecord:
    return TraceRecord(time=time, kind=kind, node=node, fields=fields)


# -- synthetic traces ---------------------------------------------------------


def test_span_from_synthetic_happy_path():
    records = [
        rec(1.0, "request", "mh0", request_id="r1", service="echo"),
        rec(1.0, "send", "mh0", net="wireless", msg="request",
            msg_id=1, detail="request(r1)"),
        rec(1.005, "recv", "s0", net="wireless", msg="request",
            msg_id=1, detail="request(r1)"),
        rec(1.005, "send", "s0", net="wired", msg="server_request",
            msg_id=2, detail="server_request(r1)"),
        rec(1.015, "recv", "srv", net="wired", msg="server_request",
            msg_id=2, detail="server_request(r1)"),
        rec(1.215, "send", "srv", net="wired", msg="server_result",
            msg_id=3, detail="server_result(r1)"),
        rec(1.225, "recv", "s0", net="wired", msg="server_result",
            msg_id=3, detail="server_result(r1)"),
        rec(1.225, "proxy_admit", "s0", request_id="r1"),
        rec(1.230, "send", "s0", net="wireless", msg="wireless_result",
            msg_id=4, detail="wireless_result(r1)"),
        rec(1.235, "recv", "mh0", net="wireless", msg="wireless_result",
            msg_id=4, detail="wireless_result(r1)"),
        rec(1.235, "deliver", "mh0", request_id="r1"),
        rec(1.240, "send", "mh0", net="wireless", msg="ack",
            msg_id=5, detail="ack(r1)"),
        rec(1.245, "recv", "s0", net="wireless", msg="ack",
            msg_id=5, detail="ack(r1)"),
        rec(1.245, "proxy_ack", "s0", request_id="r1"),
    ]
    report = SpanBuilder.from_records(records)
    assert report.issued == 1 and report.accounted()
    span = report.spans[0]
    assert span.status == "acked"
    assert span.mh == "mh0" and span.service == "echo"
    assert span.proxy_node == "s0"
    assert span.latency == pytest.approx(0.235)
    assert span.wireless_time == pytest.approx(0.010)
    assert span.wired_time == pytest.approx(0.020)
    assert span.server_time == pytest.approx(0.200)
    # The proxy residency is the exact remainder: the four stages must
    # sum to the whole span (the 100%-attribution contract).
    assert (span.wireless_time + span.wired_time + span.server_time
            + span.proxy_time) == pytest.approx(span.latency)
    # The Ack hop is after delivery: counted as a hop, not as latency.
    assert len(span.hops) == 5


def test_client_retry_keeps_first_issue_time():
    records = [
        rec(1.0, "request", "mh0", request_id="r1", service="echo"),
        rec(5.0, "request", "mh0", request_id="r1", service="echo"),
        rec(6.0, "deliver", "mh0", request_id="r1"),
    ]
    report = SpanBuilder.from_records(records)
    assert report.issued == 1
    assert report.spans[0].latency == pytest.approx(5.0)
    assert report.spans[0].status == "delivered"


def test_dropped_attempts_count_but_never_pair():
    records = [
        rec(1.0, "request", "mh0", request_id="r1"),
        rec(1.0, "send", "mh0", net="wireless", msg="request",
            msg_id=1, detail="request(r1)"),
        rec(1.005, "drop", "wireless", net="wireless", msg="request",
            msg_id=1, detail="request(r1)"),
        rec(3.0, "send", "mh0", net="wireless", msg="request",
            msg_id=2, detail="request(r1)"),
        rec(3.005, "recv", "s0", net="wireless", msg="request",
            msg_id=2, detail="request(r1)"),
    ]
    report = SpanBuilder.from_records(records)
    span = report.spans[0]
    assert span.drops == 1
    assert len(span.hops) == 1
    assert span.status == "pending"
    assert span.latency is None


def test_duplicate_deliver_records_are_counted_once_for_latency():
    records = [
        rec(1.0, "request", "mh0", request_id="r1"),
        rec(2.0, "deliver", "mh0", request_id="r1"),
        rec(4.0, "deliver", "mh0", request_id="r1"),
    ]
    span = SpanBuilder.from_records(records).spans[0]
    assert span.deliveries == 2
    assert span.latency == pytest.approx(1.0)


# -- pinned corpus ------------------------------------------------------------


def _replay(path: Path):
    """Re-run one corpus case keeping the full trace for span building."""
    case, protocol = load_case(path)
    world = fuzz.build_fuzz_world(case, protocol)
    for op in case.ops:
        world.sim.schedule_at(op.time, fuzz._execute, world, op,
                              label=f"fuzz:{op.op}")
    world.run(until=case.config.duration)
    fuzz._drain(world, case.config.drain_rounds, case.config.drain_window)
    return world, protocol


@pytest.mark.parametrize("path", SEED_FILES, ids=lambda p: p.stem)
def test_corpus_spans_account_for_every_request(path):
    world, protocol = _replay(path)
    report = SpanBuilder.from_records(world.recorder.records)

    issued_ids = sorted(rid for c in world.clients.values()
                        for rid in c.requests)
    assert sorted(s.request_id for s in report.spans) == issued_ids
    assert report.accounted()

    # Terminal delivery is exactly-once per span, and the span view of
    # "delivered" agrees with the clients' own completion accounting.
    assert all(s.deliveries <= 1 for s in report.spans)
    delivered = sum(len(c.completed) for c in world.clients.values())
    assert sum(1 for s in report.spans if s.deliveries == 1) == delivered

    # Per-span retransmit counts must sum to the proxy metric: the spans
    # and the oracle see the same recovery activity.
    assert (sum(s.retransmits for s in report.spans)
            == world.metrics.count("proxy_retransmissions"))

    if protocol == "direct":
        # These seeds pin no_lost_result violations: the span view must
        # show the same loss the oracle caught.
        assert any(s.delivered_at is None for s in report.spans)
    else:
        # The RDP stress seeds are pinned violation-free: every request
        # must show a delivered span.
        assert all(s.deliveries == 1 for s in report.spans)


# -- non-interference ---------------------------------------------------------

_TINY = BenchPreset(name="tiny", citizens=15, grid=3, duration=8.0)


def _fingerprint(world, workloads):
    return {
        "events": world.sim.events_executed,
        "final_time": round(world.sim.now, 9),
        "kinds": world.monitor.kind_histogram(),
        "metrics": digest(world.instruments.hub),
        "issued": sum(w.stats.issued for w in workloads),
    }


def test_span_recording_does_not_perturb_the_simulation(monkeypatch):
    # Request and proxy ids come from process-global counters, so their
    # string lengths (and thus modelled byte counts) depend on how many
    # worlds ran earlier in the process.  Pin both counters so the two
    # runs are comparable byte for byte.
    from repro.hosts import mobile_host
    from repro.stations import mss
    monkeypatch.setattr(mobile_host, "_request_ids", itertools.count(1))
    monkeypatch.setattr(mss, "_proxy_ids", itertools.count(1))
    off = run_scenario(_TINY, build_config(_TINY),
                       instruments=Instruments.disabled())
    monkeypatch.setattr(mobile_host, "_request_ids", itertools.count(1))
    monkeypatch.setattr(mss, "_proxy_ids", itertools.count(1))
    builder = SpanBuilder()
    recorder = TraceRecorder(kinds=SpanBuilder.KINDS,
                             sink=builder.on_record)
    on = run_scenario(_TINY, build_config(_TINY, trace=True),
                      instruments=Instruments(recorder=recorder))
    assert _fingerprint(*off) == _fingerprint(*on)
    report = builder.report()
    assert report.issued == sum(w.stats.issued for w in on[1])
    assert report.accounted()


# -- monitor sent/received parity ---------------------------------------------


def test_monitor_parity_on_loss_free_static_run():
    """Without loss or mobility every sent message is delivered, so the
    received family must mirror the sent family per (net, kind)."""
    world = make_world()
    world.add_server("echo")
    client = world.add_host("m", world.cells[0])
    for i in range(5):
        world.sim.schedule_at(1.0 + i, client.request, "echo", {"n": i})
    world.run_until_idle()
    mon = world.monitor
    assert sum(mon.kind_histogram().values()) > 0
    for net in ("wired", "wireless"):
        assert mon.kind_histogram(net) == mon.received_histogram(net)


def test_monitor_parity_with_loss_and_mobility():
    """With wireless loss and migrations, conservation still holds:
    sent == received + dropped for every (net, kind) pair."""
    world = make_world(seed=7, wireless_loss=0.2)
    world.add_server("echo")
    client = world.add_host("m", world.cells[0], retry_interval=2.0)
    host = world.hosts["m"]
    for i in range(8):
        world.sim.schedule_at(1.0 + 2.0 * i, client.request, "echo", {"n": i})
    for i, t in enumerate((2.0, 5.5, 9.0, 12.5)):
        world.sim.schedule_at(
            t, lambda i=i: host.migrate_to(world.cells[(i + 1) % 3]))
    world.run(until=30.0)
    world.run_until_idle()
    mon = world.monitor
    pairs = {(net, kind) for net in ("wired", "wireless")
             for kind in mon.kind_histogram(net)}
    assert pairs
    for net, kind in sorted(pairs):
        assert mon.count(kind, net) == (
            mon.received(kind, net) + mon.drops_of(net, kind=kind)
        ), f"conservation broken for {(net, kind)}"
