"""Tests for the latency decomposition module."""

from __future__ import annotations

import pytest

from repro.analysis.latency import (
    LatencyBreakdown,
    extract_breakdowns,
    latency_report,
)
from repro.net.latency import ConstantLatency
from repro.servers.echo import EchoServer, ManualServer

from tests.conftest import make_world


def test_breakdown_segments_add_up(world):
    world.add_server("slow", EchoServer, service_time=ConstantLatency(0.5))
    client = world.add_host("m", world.cells[0])
    world.run(until=0.5)
    p = client.request("slow", 1)
    world.run_until_idle()
    breakdowns = [b for b in extract_breakdowns(world) if b.complete]
    assert len(breakdowns) == 1
    b = breakdowns[0]
    assert b.total == pytest.approx(
        b.admission_time + b.service_time + b.delivery_time)
    assert b.service_time == pytest.approx(0.5, abs=0.05)
    assert b.total == pytest.approx(p.latency, abs=1e-9)


def test_breakdown_local_proxy_forward_counted(world):
    """Co-located proxy: the forward is a local dispatch, still traced."""
    world.add_server("echo")
    client = world.add_host("m", world.cells[0])
    world.run(until=0.5)
    client.request("echo", 1)
    world.run_until_idle()
    assert all(b.complete for b in extract_breakdowns(world))


def test_breakdown_delivery_absorbs_inactivity(world):
    server = world.add_server("manual", ManualServer)
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    world.run(until=0.5)
    p = client.request("manual", 1)
    world.run(until=1.0)
    host.deactivate()
    server.release(p.request_id)
    world.run(until=5.0)
    host.activate()
    world.run_until_idle()
    (b,) = [b for b in extract_breakdowns(world) if b.complete]
    assert b.delivery_time > 3.0          # waited out the nap
    assert b.service_time < 1.0


def test_incomplete_requests_excluded_from_report(world):
    world.add_server("manual", ManualServer)
    client = world.add_host("m", world.cells[0])
    world.run(until=0.5)
    client.request("manual", 1)           # never answered
    world.run(until=1.0)
    report = latency_report(world)
    assert report.count == 0


def test_report_renders(world):
    world.add_server("echo")
    client = world.add_host("m", world.cells[0])
    world.run(until=0.5)
    client.request("echo", 1)
    client.request("echo", 2)
    world.run_until_idle()
    report = latency_report(world)
    assert report.count == 2
    text = report.render()
    assert "delivery" in text and "n=2" in text


def test_breakdown_dataclass_defaults():
    b = LatencyBreakdown(request_id="r", issued_at=1.0, admitted_at=None,
                         result_at_proxy=None, delivered_at=None)
    assert not b.complete
    assert b.total == 0.0
    assert b.service_time == 0.0
