"""Unit tests for the pref table and the prioritized inbox."""

from __future__ import annotations

import pytest

from repro.core.protocol import AckMsg, DeregMsg, RequestMsg
from repro.sim import Simulator
from repro.stations.inbox import (
    PRIORITY_ACK,
    PRIORITY_HANDOFF,
    PRIORITY_NORMAL,
    Inbox,
    default_priority,
)
from repro.stations.pref import Pref, PrefTable
from repro.types import NodeId, ProxyId, ProxyRef, RequestId


def _ack(n: int = 1) -> AckMsg:
    return AckMsg(mh=NodeId("mh:m"), request_id=RequestId(f"r{n}"), delivery_id=n)


def _dereg() -> DeregMsg:
    return DeregMsg(mh=NodeId("mh:m"), seq=1)


def _request() -> RequestMsg:
    return RequestMsg(mh=NodeId("mh:m"), request_id=RequestId("r"), service="s")


# -- pref table -----------------------------------------------------------------

def test_pref_defaults():
    pref = Pref()
    assert pref.ref is None
    assert not pref.rkpr
    assert not pref.has_proxy
    assert pref.outstanding == set()


def test_pref_clear_proxy_resets_everything():
    ref = ProxyRef(mss=NodeId("mss:a"), proxy_id=ProxyId("px"))
    pref = Pref(ref=ref, rkpr=True)
    pref.outstanding.add(RequestId("r"))
    pref.clear_proxy()
    assert pref.ref is None and not pref.rkpr and not pref.outstanding


def test_pref_table_ensure_idempotent():
    table = PrefTable()
    a = table.ensure(NodeId("mh:m"))
    b = table.ensure(NodeId("mh:m"))
    assert a is b
    assert NodeId("mh:m") in table
    assert len(table) == 1


def test_pref_table_pop_returns_empty_for_missing():
    table = PrefTable()
    pref = table.pop(NodeId("mh:ghost"))
    assert pref.ref is None


def test_pref_table_install_resets_outstanding():
    table = PrefTable()
    ref = ProxyRef(mss=NodeId("mss:a"), proxy_id=ProxyId("px"))
    old = table.ensure(NodeId("mh:m"))
    old.outstanding.add(RequestId("r"))
    fresh = table.install(NodeId("mh:m"), ref, rkpr=True)
    assert fresh.ref == ref and fresh.rkpr
    assert fresh.outstanding == set()


# -- inbox ----------------------------------------------------------------------

def test_default_priority_classes():
    assert default_priority(_ack()) == PRIORITY_ACK
    assert default_priority(_dereg()) == PRIORITY_HANDOFF
    assert default_priority(_request()) == PRIORITY_NORMAL


def test_zero_delay_is_synchronous():
    handled = []
    inbox = Inbox(Simulator(), handled.append, proc_delay=0.0)
    inbox.push(_request())
    assert len(handled) == 1


def test_queued_acks_jump_ahead_of_deregs():
    """The paper's rule: Acks are forwarded before hand-off transactions."""
    sim = Simulator()
    handled = []
    inbox = Inbox(sim, lambda m: handled.append(m.kind), proc_delay=0.1)
    inbox.push(_request())   # occupies the server
    inbox.push(_dereg())     # queued first
    inbox.push(_ack())       # queued second but higher priority
    sim.run()
    assert handled == ["request", "ack", "dereg"]


def test_priority_disabled_is_fifo():
    sim = Simulator()
    handled = []
    inbox = Inbox(sim, lambda m: handled.append(m.kind), proc_delay=0.1,
                  ack_priority=False)
    inbox.push(_request())
    inbox.push(_dereg())
    inbox.push(_ack())
    sim.run()
    assert handled == ["request", "dereg", "ack"]


def test_fifo_within_same_priority():
    sim = Simulator()
    handled = []
    inbox = Inbox(sim, lambda m: handled.append(m.msg_id), proc_delay=0.1)
    first, second = _ack(1), _ack(2)
    blocker = _request()
    inbox.push(blocker)
    inbox.push(first)
    inbox.push(second)
    sim.run()
    assert handled == [blocker.msg_id, first.msg_id, second.msg_id]


def test_processing_takes_proc_delay_each(sim):
    times = []
    inbox = Inbox(sim, lambda m: times.append(sim.now), proc_delay=0.5)
    inbox.push(_request())
    inbox.push(_request())
    sim.run()
    assert times == [0.5, 1.0]


def test_depth_reports_waiting(sim):
    inbox = Inbox(sim, lambda m: None, proc_delay=1.0)
    inbox.push(_request())
    inbox.push(_request())
    inbox.push(_request())
    assert inbox.depth == 2  # one in service


def test_raising_handler_does_not_wedge_queue(sim):
    # Regression: an exception inside the handler used to skip
    # _start_next(), leaving the server marked busy forever and silently
    # freezing every later message.
    handled = []

    def handler(message):
        if not handled:
            handled.append("failed")
            raise RuntimeError("handler blew up")
        handled.append(message)

    inbox = Inbox(sim, handler, proc_delay=0.5)
    inbox.push(_request())
    inbox.push(_ack(1))
    with pytest.raises(RuntimeError):
        sim.run()  # fails loudly on the first message...
    sim.run()
    assert handled[0] == "failed"  # ...but the queue kept going
    assert len(handled) == 2 and isinstance(handled[1], AckMsg)
    inbox.push(_request())
    sim.run()
    assert len(handled) == 3
