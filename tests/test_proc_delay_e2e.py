"""End-to-end runs with per-message MSS processing time.

``proc_delay > 0`` turns every MSS into a queueing server (the regime
where the Ack-priority rule matters).  The whole protocol must behave
identically apart from latency.
"""

from __future__ import annotations

import pytest

from repro.analysis.verify import check_all
from repro.experiments.harness import drain
from repro.net.latency import ConstantLatency
from repro.servers.echo import EchoServer

from tests.conftest import make_world


@pytest.mark.parametrize("proc_delay", [0.0, 0.002, 0.01])
def test_request_roundtrip_under_proc_delay(proc_delay):
    world = make_world(proc_delay=proc_delay)
    world.add_server("echo")
    client = world.add_host("m", world.cells[0])
    p = client.request("echo", 1)
    world.run_until_idle()
    assert p.done
    assert world.live_proxy_count() == 0


@pytest.mark.parametrize("proc_delay", [0.002, 0.01])
def test_migration_during_queueing(proc_delay):
    world = make_world(proc_delay=proc_delay)
    world.add_server("slow", EchoServer, service_time=ConstantLatency(1.0))
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    world.sim.schedule(0.1, client.request, "slow", 1)
    world.sim.schedule(0.5, host.migrate_to, world.cells[1])
    world.sim.schedule(1.05, host.migrate_to, world.cells[2])
    world.run_until_idle()
    assert list(client.requests.values())[0].done
    report = check_all(world, expect_quiescent=True, expect_no_proxies=True)
    assert report.ok, report.violations


def test_proc_delay_inflates_latency():
    def roundtrip(proc_delay):
        world = make_world(proc_delay=proc_delay)
        world.add_server("echo")
        client = world.add_host("m", world.cells[0])
        world.run(until=1.0)
        p = client.request("echo", 1)
        world.run_until_idle()
        return p.latency

    assert roundtrip(0.02) > roundtrip(0.0) + 0.04  # several hops queue


def test_burst_under_queueing_all_delivered():
    world = make_world(proc_delay=0.004)
    world.add_server("echo")
    clients = [world.add_host(f"m{i}", world.cells[i % 3], retry_interval=3.0)
               for i in range(5)]
    world.run(until=1.0)
    pendings = [c.request("echo", i) for c in clients for i in range(4)]
    world.run(until=30.0)
    drain(world)
    assert all(p.done for p in pendings)
    report = check_all(world, expect_quiescent=True)
    assert report.ok, report.violations
