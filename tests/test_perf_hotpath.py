"""Hot-path guarantees: zero-cost tracing when disabled, and the indexed
causal drain delivering in exactly the order of the classic rescan."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, ClassVar, Dict, List

from repro.net.causal import CausalOrdering, OrderingLayer, StampedMessage
from repro.net.latency import ConstantLatency
from repro.net.message import Message
from repro.net.vectorclock import VectorClock
from repro.net.wired import WiredNetwork
from repro.net.wireless import WirelessChannel
from repro.sim import Simulator, TraceRecorder
from repro.types import CellId, MhState, NodeId


@dataclass(slots=True, kw_only=True)
class _TrackedMsg(Message):
    kind: ClassVar[str] = "tracked"
    tag: str = ""

    def describe(self) -> str:
        _DESCRIBE_CALLS.append(self.tag)
        return f"tracked {self.tag}"


_DESCRIBE_CALLS: List[str] = []


class _StaticNode:
    def __init__(self, name: str) -> None:
        self.node_id = NodeId(name)
        self.received: List[Message] = []

    def on_wired_message(self, message: Message) -> None:
        self.received.append(message)


class _Station:
    def __init__(self, name: str, cell: str) -> None:
        self.node_id = NodeId(name)
        self.cell_id = CellId(cell)
        self.received: List[Message] = []

    def on_wireless_message(self, message: Message) -> None:
        self.received.append(message)


class _Host:
    def __init__(self, name: str, cell: str) -> None:
        self.node_id = NodeId(name)
        self.current_cell = CellId(cell)
        self.state = MhState.ACTIVE
        self.received: List[Message] = []

    def on_wireless_message(self, message: Message) -> None:
        self.received.append(message)


# -- zero-cost tracing --------------------------------------------------------


def test_no_describe_on_wired_path_when_recorder_disabled(sim):
    _DESCRIBE_CALLS.clear()
    net = WiredNetwork(sim, latency=ConstantLatency(0.01),
                       recorder=TraceRecorder(enabled=False))
    a, b = _StaticNode("a"), _StaticNode("b")
    net.attach(a)
    net.attach(b)
    net.send(a.node_id, b.node_id, _TrackedMsg(tag="w1"))
    sim.run()
    assert [m.tag for m in b.received] == ["w1"]
    assert _DESCRIBE_CALLS == []


def test_no_describe_on_wireless_path_when_recorder_disabled(sim):
    _DESCRIBE_CALLS.clear()
    channel = WirelessChannel(sim, latency=ConstantLatency(0.005),
                              recorder=TraceRecorder(enabled=False))
    station = _Station("mss:a", "cell:a")
    host = _Host("mh:m", "cell:a")
    channel.register_station(station)
    channel.register_host(host)
    channel.downlink(station, host.node_id, _TrackedMsg(tag="down"))
    channel.uplink(host, _TrackedMsg(tag="up"))
    sim.run()
    assert [m.tag for m in host.received] == ["down"]
    assert [m.tag for m in station.received] == ["up"]
    assert _DESCRIBE_CALLS == []


def test_no_describe_when_kind_filtered_out(sim):
    _DESCRIBE_CALLS.clear()
    net = WiredNetwork(sim, latency=ConstantLatency(0.01),
                       recorder=TraceRecorder(kinds={"drop"}))
    a, b = _StaticNode("a"), _StaticNode("b")
    net.attach(a)
    net.attach(b)
    net.send(a.node_id, b.node_id, _TrackedMsg(tag="w1"))
    sim.run()
    assert _DESCRIBE_CALLS == []


def test_describe_still_evaluated_when_recording(sim):
    _DESCRIBE_CALLS.clear()
    recorder = TraceRecorder()
    net = WiredNetwork(sim, latency=ConstantLatency(0.01), recorder=recorder)
    a, b = _StaticNode("a"), _StaticNode("b")
    net.attach(a)
    net.attach(b)
    net.send(a.node_id, b.node_id, _TrackedMsg(tag="w1"))
    sim.run()
    assert _DESCRIBE_CALLS == ["w1", "w1"]  # send + recv
    assert recorder.filter(kind="send")[0].get("detail") == "tracked w1"


# -- indexed causal drain vs the classic rescan -------------------------------


class _RescanCausalOrdering(OrderingLayer):
    """Reference implementation: the pre-index SES layer with the
    O(n^2) rescan-from-start hold-back drain.  Kept verbatim (modulo
    naming) as the executable spec of delivery order."""

    def __init__(self) -> None:
        self._knowledge: Dict[NodeId, VectorClock] = {}
        self._sent: Dict[NodeId, int] = {}
        self._dep: Dict[NodeId, Dict[str, VectorClock]] = {}
        self._buffers: Dict[NodeId, List[StampedMessage]] = {}

    def _endpoint(self, node: NodeId):
        if node not in self._knowledge:
            self._knowledge[node] = VectorClock()
            self._dep[node] = {}
            self._sent[node] = 0
        return self._knowledge[node], self._dep[node]

    def on_send(self, src: NodeId, dst: NodeId, message: Message) -> StampedMessage:
        knowledge, dep = self._endpoint(src)
        self._sent[src] += 1
        stamp = knowledge.copy()
        stamp.merge(VectorClock({src: self._sent[src]}))
        constraints = {node: clock.copy() for node, clock in dep.items()}
        dep[dst] = stamp.copy()
        return StampedMessage(message=message, stamp=stamp, constraints=constraints)

    def on_arrival(self, dst: NodeId, stamped: StampedMessage,
                   deliver: Callable[[Message], None]) -> None:
        self._buffers.setdefault(dst, []).append(stamped)
        buffer = self._buffers[dst]
        progressed = True
        while progressed:
            progressed = False
            for index, held in enumerate(buffer):
                knowledge, _ = self._endpoint(dst)
                constraint = held.constraints.get(dst)
                if constraint is None or knowledge.dominates(constraint):
                    buffer.pop(index)
                    self._commit(dst, held)
                    deliver(held.message)
                    progressed = True
                    break

    def _commit(self, node: NodeId, stamped: StampedMessage) -> None:
        vt, dep = self._endpoint(node)
        vt.merge(stamped.stamp)
        for other, clock in stamped.constraints.items():
            if other == node:
                continue
            if other in dep:
                dep[other].merge(clock)
            else:
                dep[other] = clock.copy()


def _random_traffic(seed: int, n_nodes: int, n_messages: int):
    """One randomized run: sends with random jitter per message, arrivals
    processed in (arrival time, send order) order — latency inversions
    included, exactly what the hold-back buffer exists for."""
    rng = random.Random(seed)
    nodes = [NodeId(f"n{i}") for i in range(n_nodes)]
    sends = []
    clock = 0.0
    for i in range(n_messages):
        clock += rng.random()
        src = rng.choice(nodes)
        dst = rng.choice(nodes)
        arrival = clock + rng.uniform(0.0, 8.0)
        sends.append((clock, arrival, i, src, dst))
    return sends


def _deliveries(layer: OrderingLayer, sends) -> List[tuple]:
    order: List[tuple] = []
    arrivals = []
    for send_time, arrival, i, src, dst in sorted(sends):
        msg = _TrackedMsg(tag=f"m{i}")
        stamped = layer.on_send(src, dst, msg)
        arrivals.append((arrival, i, dst, stamped))
    for _, _, dst, stamped in sorted(arrivals):
        layer.on_arrival(dst, stamped,
                         lambda m, _dst=dst: order.append((_dst, m.tag)))
    return order


def test_indexed_drain_matches_rescan_order_under_stress():
    _DESCRIBE_CALLS.clear()
    for seed in range(20):
        sends = _random_traffic(seed, n_nodes=6, n_messages=120)
        fast = _deliveries(CausalOrdering(), sends)
        reference = _deliveries(_RescanCausalOrdering(), sends)
        assert len(fast) == 120
        assert fast == reference, f"delivery order diverged for seed {seed}"


def test_indexed_drain_interleaved_sends_and_arrivals():
    # Sends interleaved with arrivals (knowledge evolves between sends),
    # mimicking live request/response traffic rather than batch replay.
    for seed in range(10):
        rng = random.Random(1000 + seed)
        nodes = [NodeId(f"n{i}") for i in range(5)]
        fast, reference = CausalOrdering(), _RescanCausalOrdering()
        fast_order: List[tuple] = []
        ref_order: List[tuple] = []
        pending_fast: List[tuple] = []
        pending_ref: List[tuple] = []
        for i in range(200):
            src, dst = rng.choice(nodes), rng.choice(nodes)
            msg = _TrackedMsg(tag=f"m{i}")
            pending_fast.append((dst, fast.on_send(src, dst, msg)))
            pending_ref.append((dst, reference.on_send(src, dst, msg)))
            while pending_fast and rng.random() < 0.6:
                take = rng.randrange(len(pending_fast))
                dst_f, stamped_f = pending_fast.pop(take)
                dst_r, stamped_r = pending_ref.pop(take)
                fast.on_arrival(dst_f, stamped_f,
                                lambda m, _d=dst_f: fast_order.append((_d, m.tag)))
                reference.on_arrival(dst_r, stamped_r,
                                     lambda m, _d=dst_r: ref_order.append((_d, m.tag)))
        for (dst_f, stamped_f), (dst_r, stamped_r) in zip(pending_fast, pending_ref):
            fast.on_arrival(dst_f, stamped_f,
                            lambda m, _d=dst_f: fast_order.append((_d, m.tag)))
            reference.on_arrival(dst_r, stamped_r,
                                 lambda m, _d=dst_r: ref_order.append((_d, m.tag)))
        assert len(fast_order) == 200
        assert fast_order == ref_order


def test_held_count_and_retire_prune_state():
    layer = CausalOrdering()
    a, b, c = NodeId("a"), NodeId("b"), NodeId("c")
    layer.on_send(a, b, _TrackedMsg(tag="first"))  # stamp never arrives
    second = layer.on_send(a, b, _TrackedMsg(tag="second"))
    got: List[str] = []
    layer.on_arrival(b, second, lambda m: got.append(m.tag))
    assert got == [] and layer.held_count(b) == 1  # held: first not seen yet
    assert layer.retire(b) == 1  # drops the held message with the endpoint
    assert layer.held_count(b) == 0
    # a's constraint table no longer references the retired endpoint...
    stamped = layer.on_send(a, c, _TrackedMsg(tag="third"))
    assert b not in stamped.constraints
    # ...and a re-created endpoint starts fresh: new sends deliver.
    refreshed = layer.on_send(a, b, _TrackedMsg(tag="fresh"))
    layer.on_arrival(b, refreshed, lambda m: got.append(m.tag))
    assert got == ["fresh"]


def test_wired_detach_retires_ordering_state(sim):
    net = WiredNetwork(sim, latency=ConstantLatency(0.01),
                       recorder=TraceRecorder(enabled=False))
    a, b = _StaticNode("a"), _StaticNode("b")
    net.attach(a)
    net.attach(b)
    net.send(a.node_id, b.node_id, _TrackedMsg(tag="w1"))
    sim.run()
    net.detach(b.node_id)
    assert not net.knows(b.node_id)
    assert net.ordering.retire(b.node_id) == 0  # idempotent, already pruned
