"""Tests for the plain-text chart helpers."""

from __future__ import annotations

import pytest

from repro.analysis.charts import curve, hbar_chart, sparkline


def test_hbar_scales_to_peak():
    text = hbar_chart({"a": 10.0, "b": 5.0, "c": 0.0}, width=10, title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert lines[1].count("#") == 10
    assert lines[2].count("#") == 5
    assert lines[3].count("#") == 0
    assert "10" in lines[1]


def test_hbar_empty_and_invalid():
    assert "(no data)" in hbar_chart({})
    with pytest.raises(ValueError):
        hbar_chart({"a": 1.0}, width=0)


def test_hbar_all_zero():
    text = hbar_chart({"a": 0.0, "b": 0.0}, width=8)
    assert "#" not in text


def test_curve_places_extremes():
    text = curve([(1.0, 0.0), (10.0, 100.0)], width=10, height=5, title="C")
    lines = text.splitlines()
    assert lines[0] == "C"
    body = [l for l in lines if l.startswith("|")]
    assert body[0].strip("|").rstrip()[-1] == "*"   # max y at top-right
    assert body[-1].lstrip("|")[0] == "*"           # min y at bottom-left


def test_curve_log_x():
    text = curve([(0.1, 1.0), (1.0, 2.0), (10.0, 3.0)], log_x=True)
    assert "log10(x): -1 .. 1" in text


def test_curve_empty():
    assert curve([], title="empty") == "empty"


def test_sparkline_shape():
    line = sparkline([0, 1, 2, 3])
    assert len(line) == 4
    assert line[0] < line[-1]
    assert sparkline([]) == ""
    assert len(set(sparkline([5, 5, 5]))) == 1
