"""Tests for statistics, sequence charts, and invariant verification."""

from __future__ import annotations

import pytest

from repro.analysis.sequence import (
    extract_chart,
    kinds_in_order,
    render_chart,
    subsequence_present,
)
from repro.analysis.stats import (
    Summary,
    histogram,
    imbalance_ratio,
    jain_fairness,
    mean,
    percentile,
    rate,
    stddev,
    summarize,
)
from repro.analysis.verify import VerificationReport, check_all
from repro.errors import VerificationError
from repro.net.latency import ConstantLatency
from repro.sim import TraceRecorder

from tests.conftest import make_world


# -- stats ------------------------------------------------------------------------

def test_mean_and_stddev():
    assert mean([1, 2, 3]) == 2.0
    assert mean([]) == 0.0
    assert stddev([2, 2, 2]) == 0.0
    assert stddev([1, 3]) == pytest.approx(1.4142, rel=1e-3)
    assert stddev([5]) == 0.0


def test_percentile_interpolates():
    values = [10, 20, 30, 40]
    assert percentile(values, 0) == 10
    assert percentile(values, 100) == 40
    assert percentile(values, 50) == 25
    assert percentile([], 50) == 0.0
    with pytest.raises(ValueError):
        percentile(values, 150)


def test_summarize():
    s = summarize([1.0, 2.0, 3.0, 4.0, 100.0])
    assert isinstance(s, Summary)
    assert s.count == 5
    assert s.maximum == 100.0
    assert s.p50 == 3.0
    assert "n=5" in str(s)
    empty = summarize([])
    assert empty.count == 0


def test_jain_fairness_bounds():
    assert jain_fairness([5, 5, 5, 5]) == pytest.approx(1.0)
    assert jain_fairness([10, 0, 0, 0]) == pytest.approx(0.25)
    assert jain_fairness([]) == 1.0
    assert jain_fairness([0, 0]) == 1.0


def test_imbalance_ratio():
    assert imbalance_ratio([2, 2, 2]) == pytest.approx(1.0)
    assert imbalance_ratio([9, 1, 2]) == pytest.approx(9 / 4)
    assert imbalance_ratio([]) == 1.0


def test_histogram():
    h = histogram([0.1, 0.15, 0.34, 0.9], 0.2)
    assert h[0.0] == 2
    assert h[0.2] == 1
    assert sum(h.values()) == 4
    assert any(abs(edge - 0.8) < 1e-9 for edge in h)
    with pytest.raises(ValueError):
        histogram([1], 0)


def test_rate():
    assert rate(3, 6) == 0.5
    assert rate(3, 0) == 0.0


# -- sequence charts -----------------------------------------------------------------

def _recorder_with_sends() -> TraceRecorder:
    rec = TraceRecorder()
    rec.record(1.0, "send", "a", msg="request", dst="b", detail="request(r1)")
    rec.record(1.5, "recv", "b", msg="request", src="a")
    rec.record(2.0, "send", "b", msg="result_forward", dst="c",
               detail="fwd_result(r1)")
    rec.record(3.0, "send", "c", msg="ack", dst="b", detail="ack(r1)")
    return rec


def test_extract_chart_uses_send_records():
    chart = extract_chart(_recorder_with_sends())
    assert len(chart) == 3
    assert chart[0].arrow() == "a -> b: request(r1)"


def test_extract_chart_filters_kinds_and_participants():
    rec = _recorder_with_sends()
    assert len(extract_chart(rec, kinds={"ack"})) == 1
    assert len(extract_chart(rec, participants={"a", "b"})) == 1


def test_kinds_in_order_and_render():
    chart = extract_chart(_recorder_with_sends())
    assert kinds_in_order(chart) == ["request", "result_forward", "ack"]
    text = render_chart(chart, title="T")
    assert "T" in text and "fwd_result(r1)" in text


def test_subsequence_present():
    hay = ["a", "x", "b", "y", "c"]
    assert subsequence_present(hay, ["a", "b", "c"])
    assert subsequence_present(hay, [])
    assert not subsequence_present(hay, ["b", "a"])
    assert not subsequence_present(hay, ["a", "z"])


# -- verification -------------------------------------------------------------------

def test_check_all_passes_on_clean_world(world):
    world.add_server("echo")
    client = world.add_host("m", world.cells[0])
    client.request("echo", 1)
    world.run_until_idle()
    report = check_all(world, expect_quiescent=True, expect_no_proxies=True)
    assert report.ok, report.violations
    assert "at_least_once" in report.checked
    report.raise_if_failed()  # no-op


def test_check_detects_incomplete_requests(world):
    from repro.servers.echo import ManualServer

    world.add_server("manual", ManualServer)
    client = world.add_host("m", world.cells[0])
    client.request("manual", 1)
    world.run(until=1.0)
    report = check_all(world, expect_quiescent=True)
    assert not report.ok
    assert any("never completed" in v for v in report.violations)
    with pytest.raises(VerificationError):
        report.raise_if_failed()


def test_check_detects_lingering_proxies(world):
    from repro.servers.echo import ManualServer

    world.add_server("manual", ManualServer)
    client = world.add_host("m", world.cells[0])
    client.request("manual", 1)
    world.run(until=1.0)
    report = check_all(world, expect_quiescent=False, expect_no_proxies=True)
    assert not report.ok
    assert any("pending requests" in v for v in report.violations)


def test_check_passes_under_heavy_migration(world):
    world.add_server("slow", service_time=ConstantLatency(2.0))
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    world.sim.schedule(0.1, client.request, "slow", 1)
    for i, t in enumerate((0.5, 1.0, 1.5, 2.0, 2.5)):
        world.sim.schedule(t, host.migrate_to, world.cells[(i + 1) % 3])
    world.run_until_idle()
    report = check_all(world, expect_quiescent=True, expect_no_proxies=True)
    assert report.ok, report.violations


def test_verification_report_accumulates():
    report = VerificationReport()
    assert report.ok
    report.fail("x")
    report.fail("y")
    assert not report.ok
    assert report.violations == ["x", "y"]
