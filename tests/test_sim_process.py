"""Tests for timers and periodic processes."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError
from repro.sim import PeriodicProcess, Timer


def test_timer_fires_after_delay(sim):
    out = []
    timer = Timer(sim, lambda: out.append(sim.now))
    timer.restart(2.0)
    sim.run()
    assert out == [2.0]


def test_timer_restart_supersedes_previous(sim):
    out = []
    timer = Timer(sim, lambda: out.append(sim.now))
    timer.restart(2.0)
    timer.restart(5.0)
    sim.run()
    assert out == [5.0]


def test_timer_cancel(sim):
    out = []
    timer = Timer(sim, lambda: out.append(sim.now))
    timer.restart(1.0)
    timer.cancel()
    sim.run()
    assert out == []
    assert not timer.armed


def test_timer_armed_property(sim):
    timer = Timer(sim, lambda: None)
    assert not timer.armed
    timer.restart(1.0)
    assert timer.armed
    sim.run()
    assert not timer.armed


def test_timer_can_rearm_from_callback(sim):
    fires = []
    timer = Timer(sim, lambda: None)

    def tick():
        fires.append(sim.now)
        if len(fires) < 3:
            timer.restart(1.0)

    timer._callback = tick
    timer.restart(1.0)
    sim.run()
    assert fires == [1.0, 2.0, 3.0]


def test_periodic_fixed_interval(sim):
    out = []
    proc = PeriodicProcess(sim, lambda: out.append(sim.now), lambda: 1.0)
    proc.start()
    sim.run(until=3.5)
    assert out == [1.0, 2.0, 3.0]


def test_periodic_initial_delay(sim):
    out = []
    proc = PeriodicProcess(sim, lambda: out.append(sim.now), lambda: 2.0)
    proc.start(initial_delay=0.5)
    sim.run(until=3.0)
    assert out == [0.5, 2.5]


def test_periodic_stop(sim):
    out = []
    proc = PeriodicProcess(sim, lambda: out.append(sim.now), lambda: 1.0)
    proc.start()
    sim.schedule(2.5, proc.stop)
    sim.run()
    assert out == [1.0, 2.0]


def test_periodic_stop_from_action(sim):
    out = []
    proc = PeriodicProcess(sim, lambda: (out.append(sim.now), proc.stop()),
                           lambda: 1.0)
    proc.start()
    sim.run()
    assert out == [1.0]


def test_periodic_double_start_rejected(sim):
    proc = PeriodicProcess(sim, lambda: None, lambda: 1.0)
    proc.start()
    with pytest.raises(SchedulingError):
        proc.start()


def test_periodic_variable_period(sim):
    periods = iter([1.0, 2.0, 4.0, 100.0])
    out = []
    proc = PeriodicProcess(sim, lambda: out.append(sim.now), lambda: next(periods))
    proc.start()
    sim.run(until=10.0)
    assert out == [1.0, 3.0, 7.0]
