"""Scripted tests for the lost-greet custody fallback (DESIGN.md §7.4).

The wireless loss probability is toggled around specific transmissions
to lose exactly the messages the scenario needs lost.
"""

from __future__ import annotations

import pytest

from repro.net.latency import ConstantLatency
from repro.servers.echo import EchoServer, ManualServer

from tests.conftest import make_world


def _lose_next_window(world, start, duration=0.05):
    """Drop every wireless transmission sent in [start, start+duration]."""
    def on() -> None:
        world.wireless.loss_probability = 0.999999
    def off() -> None:
        world.wireless.loss_probability = 0.0
    world.sim.schedule_at(start, on)
    world.sim.schedule_at(start + duration, off)


def test_lost_greet_fallback_finds_confirmed_owner():
    """greet to s1 lost; MH moves on to s2; s2's dereg to s1 fails and
    the fallback dereg reaches the true owner s0."""
    world = make_world(n_cells=3)
    server = world.add_server("manual", ManualServer)
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    p = client.request("manual", "x")           # proxy + pref at s0
    world.run(until=0.5)

    _lose_next_window(world, 1.0)
    world.sim.schedule_at(1.01, host.migrate_to, world.cells[1])  # greet lost
    # Move on before the 1s greet retry fires:
    world.sim.schedule_at(1.5, host.migrate_to, world.cells[2])
    world.run(until=5.0)

    assert world.metrics.count("handoff_fallback_deregs") == 1
    s2 = world.station(world.cells[2])
    assert host.node_id in s2.local_mhs
    assert host.registered
    pref = s2.prefs.get(host.node_id)
    assert pref is not None and pref.ref is not None   # custody arrived
    server.release(p.request_id, "found-you")
    world.run_until_idle()
    assert p.done and p.result == "found-you"


def test_lost_greet_then_reactivation_uses_fallback():
    """greet to s1 lost; MH naps and wakes in s1's cell: the reactivation
    greet hits an MSS that has never heard of it — the candidate list
    lets s1 fetch the state from s0 instead of registering blind."""
    world = make_world(n_cells=3)
    server = world.add_server("manual", ManualServer)
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    p = client.request("manual", "x")
    world.run(until=0.5)

    _lose_next_window(world, 1.0)
    world.sim.schedule_at(1.01, host.migrate_to, world.cells[1])  # lost
    world.sim.schedule_at(1.02, host.deactivate)
    world.run(until=2.0)
    host.activate()    # greet(old=s1) at s1, candidates include s0
    world.run(until=6.0)

    s1 = world.station(world.cells[1])
    assert host.node_id in s1.local_mhs
    pref = s1.prefs.get(host.node_id)
    assert pref is not None and pref.ref is not None
    # Exactly one station owns it (no blind double-registration).
    owners = [s for s in world.stations.values()
              if host.node_id in s.local_mhs]
    assert len(owners) == 1
    server.release(p.request_id, "ok")
    world.run_until_idle()
    assert p.done


def test_fallback_exhaustion_aborts_cleanly():
    """When no candidate owns the state either, the acquisition aborts
    and the retrying greet eventually re-drives registration."""
    world = make_world(n_cells=4)
    world.add_server("echo")
    client = world.add_host("m", world.cells[0], retry_interval=2.0)
    host = world.hosts["m"]
    world.run(until=0.5)
    # Lose TWO consecutive greets so both announcement and history lie.
    _lose_next_window(world, 1.0)
    world.sim.schedule_at(1.01, host.migrate_to, world.cells[1])
    world.run(until=1.1)
    _lose_next_window(world, 1.2)
    world.sim.schedule_at(1.21, host.migrate_to, world.cells[2])
    world.run(until=1.3)
    world.sim.schedule_at(1.4, host.migrate_to, world.cells[3])
    world.run(until=10.0)
    # However the chase resolved, the MH must end registered exactly once
    # and able to complete requests.
    owners = [s for s in world.stations.values()
              if host.node_id in s.local_mhs]
    assert len(owners) == 1
    assert host.registered
    p = client.request("echo", "after-chaos")
    world.run(until=20.0)
    assert p.done
    world.run_until_idle()


def test_no_fallback_traffic_in_clean_runs():
    world = make_world(n_cells=4)
    world.add_server("slow", EchoServer, service_time=ConstantLatency(1.0))
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    world.sim.schedule(0.1, client.request, "slow", 1)
    for i, t in enumerate((0.5, 1.0, 1.5)):
        world.sim.schedule(t, host.migrate_to, world.cells[i + 1])
    world.run_until_idle()
    assert world.metrics.count("handoff_fallback_deregs") == 0
    assert world.metrics.count("reactivation_of_unknown_mh") == 0
