"""MH doze/crash/recovery lifecycle and durable proxy result custody.

The paper's MHs only ever *plan* their disconnections (``deactivate``).
These tests pin the unplanned flavours added for last-mile robustness:
doze (radio off, state kept), crash (volatile state lost, durable client
log survives), the recovery handshake that replays the log and dedups
redelivered results, wireless ack-timeout redelivery, bounded proxy
custody, and capped registration backoff under a blacked-out cell.
"""

from __future__ import annotations

import pytest

from repro.config import WirelessFaultSpec
from repro.errors import ProtocolError
from repro.net.latency import ConstantLatency
from repro.servers.echo import EchoServer, ManualServer
from repro.types import MhState
from repro.verify import NoCustodyLeak, NoLostResult, Oracle

from tests.conftest import make_world


def _attach_oracle(world, checkers=None):
    oracle = Oracle(checkers) if checkers is not None else Oracle()
    oracle.attach(world.instruments.recorder)
    return oracle


# -- doze / wake --------------------------------------------------------------

def test_doze_guards_and_state():
    world = make_world()
    world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    with pytest.raises(ProtocolError):
        host.wake()  # not dozing
    world.run(until=1.0)
    world.doze_mh("m")
    assert host.state is MhState.DOZING
    assert not host.registered
    with pytest.raises(ProtocolError):
        host.doze()  # already dozing
    with pytest.raises(ProtocolError):
        host.send_request("echo")  # radio is off
    world.wake_mh("m")
    assert host.state is MhState.ACTIVE
    world.run(until=2.0)
    assert host.registered  # wake re-registered in place


def test_doze_with_result_in_flight_is_exactly_once():
    """A result that arrives while the MH dozes is held in custody and
    delivered exactly once after the wake re-registration."""
    world = make_world(wireless_ack_timeout=3.0)
    oracle = _attach_oracle(world)
    world.add_server("echo", EchoServer, service_time=ConstantLatency(0.3))
    client = world.add_host("m", world.cells[0])
    world.run(until=1.0)
    pending = client.request("echo", 7)
    world.run(until=1.1)   # request is uplinked, result still cooking
    world.doze_mh("m")
    world.run(until=2.5)   # result reached the MSS, downlink dropped
    assert not pending.done
    world.wake_mh("m")
    world.run(until=10.0)
    assert pending.done and pending.result == 7
    oracle.detach()
    oracle.finish()
    assert oracle.violations == []


# -- crash / recover ----------------------------------------------------------

def test_crash_wipes_volatile_state_and_guards():
    world = make_world()
    world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    world.run(until=1.0)
    assert host.registered
    world.crash_mh("m")
    assert host.state is MhState.CRASHED
    assert not host.registered and host.resp_mss is None
    with pytest.raises(ProtocolError):
        host.crash()  # already down
    with pytest.raises(ProtocolError):
        host.send_request("echo")


def test_recovery_replays_log_and_chases_custody_across_cells():
    """Crash with a request unanswered, recover in a DIFFERENT cell: the
    durable log replays the request, the greet's old_mss chases the held
    result across the hand-off, and delivery is exactly-once."""
    world = make_world(wireless_ack_timeout=3.0)
    oracle = _attach_oracle(world)
    server = world.add_server("echo", ManualServer)
    client = world.add_host("m", world.cells[0])
    world.run(until=1.0)
    pending = client.request("echo", 42)
    world.run(until=1.5)   # request held at the server
    world.crash_mh("m")
    world.run(until=2.0)
    server.release_next()  # result lands in proxy custody, MH is dark
    world.run(until=3.0)
    world.recover_mh("m", world.cells[1])
    world.run(until=20.0)
    assert pending.done and pending.result == 42
    recoveries = world.instruments.recorder.filter(kind="mh_recover")
    assert len(recoveries) == 1
    assert recoveries[0].get("replayed") == 1
    oracle.detach()
    oracle.finish()
    assert oracle.violations == []


def test_amnesia_recovery_loses_what_the_log_would_have_saved():
    """The same scenario without the durable log: the unanswered request
    is never replayed and the oracle sees the lost result — this is the
    gap the client log exists to close."""
    world = make_world(wireless_ack_timeout=-1.0, proxy_custody_ttl=1.0)
    oracle = _attach_oracle(world, [NoLostResult()])
    server = world.add_server("echo", ManualServer)
    client = world.add_host("m", world.cells[0])
    world.run(until=1.0)
    pending = client.request("echo", 42)
    world.run(until=1.5)
    world.crash_mh("m")
    world.run(until=2.0)
    server.release_next()
    world.run(until=5.0)   # custody TTL expires while the MH is down
    world.hosts["m"].recover(world.cells[1], amnesia=True)
    world.run(until=20.0)
    assert not pending.done
    oracle.detach()
    oracle.finish()
    assert [v.invariant for v in oracle.violations] == ["no_lost_result"]


def test_recovery_dedups_redelivered_results():
    """A result delivered (and logged) just before the crash may be
    redelivered by the custody chase; the log's delivered-ids set must
    swallow the duplicate."""
    world = make_world(wireless_ack_timeout=1.0)
    oracle = _attach_oracle(world)
    world.add_server("echo", EchoServer, service_time=ConstantLatency(0.1))
    client = world.add_host("m", world.cells[0])
    world.run(until=1.0)
    pending = client.request("echo", 5)
    world.run(until=1.5)
    assert pending.done
    # Crash before the wireless ack cycle fully settles, then recover:
    # the proxy may push the result again at re-registration.
    world.crash_mh("m")
    world.run(until=2.5)
    world.recover_mh("m", world.cells[0])
    world.run(until=15.0)
    host = world.hosts["m"]
    deliveries = [r for r in world.instruments.recorder.filter(kind="deliver")
                  if r.node == host.node_id]
    assert len(deliveries) == 1  # duplicates were dropped before "deliver"
    oracle.detach()
    oracle.finish()
    assert oracle.violations == []


# -- bounded custody ----------------------------------------------------------

def test_custody_ttl_expires_with_trace_and_metric():
    """With redelivery off and a short TTL, custody of a result for a
    crashed MH ends in an explicit ``custody_expired`` — traced, counted,
    and discharging the no-custody-leak invariant."""
    world = make_world(wireless_ack_timeout=-1.0, proxy_custody_ttl=1.0)
    oracle = _attach_oracle(world, [NoCustodyLeak()])
    server = world.add_server("echo", ManualServer)
    client = world.add_host("m", world.cells[0])
    world.run(until=1.0)
    client.request("echo", 9)
    world.run(until=1.5)
    world.crash_mh("m")
    world.run(until=2.0)
    server.release_next()
    world.run(until=6.0)   # TTL 1.0 fires well before anyone returns
    expired = world.instruments.recorder.filter(kind="custody_expired")
    assert len(expired) == 1
    assert expired[0].get("age") >= 1.0
    assert world.instruments.metrics.count("proxy_custody_expired") == 1
    oracle.detach()
    oracle.finish()
    assert oracle.violations == []


# -- wireless redelivery ------------------------------------------------------

def test_ack_timeout_redelivers_through_a_blackout():
    """A result downlinked into a cell blackout is redelivered by the
    wireless ack timeout once the radio clears — no re-registration, no
    client retry, still exactly-once."""
    world = make_world(wireless_faults=WirelessFaultSpec(
        blackouts=(("cell0", 1.4, 3.0),)))
    oracle = _attach_oracle(world)
    world.add_server("echo", EchoServer, service_time=ConstantLatency(0.5))
    client = world.add_host("m", world.cells[0])
    world.run(until=1.0)
    pending = client.request("echo", 3)   # result downlinks at ~1.55: dark
    world.run(until=2.0)
    assert not pending.done
    world.run(until=10.0)                 # auto ack timeout (3 s) re-sends
    assert pending.done
    redeliveries = world.instruments.recorder.filter(
        kind="wireless_redelivery")
    assert len(redeliveries) >= 1
    assert world.instruments.metrics.count("wireless_redeliveries") >= 1
    oracle.detach()
    oracle.finish()
    assert oracle.violations == []


# -- registration backoff under blackout --------------------------------------

def test_registration_backoff_capped_under_blacked_out_cell():
    """Joining inside a 20 s blackout: greet retries back off (doubling,
    saturating at the cap) instead of hammering a dead radio, the timer
    never grows past the cap, and exactly one registration lands once
    the cell clears."""
    world = make_world(wireless_faults=WirelessFaultSpec(
        blackouts=(("cell0", 0.0, 20.0),)))
    world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    world.run(until=19.0)
    assert not host.registered
    retries_in_the_dark = world.instruments.metrics.count(
        "mh_registration_retries")
    # Capped doubling (1+2+4+8+8...) fits ~5 retries in 19 s; the legacy
    # fixed 1 s timer would have burnt 18.
    assert 3 <= retries_in_the_dark <= 7
    # The interval saturates at the auto cap (8 x greet_retry_interval).
    assert host.greet_backoff_cap == pytest.approx(8.0)
    assert host._retry_interval() <= host.greet_backoff_cap
    world.run(until=45.0)
    assert host.registered
    registrations = [r for r in
                     world.instruments.recorder.filter(kind="register")
                     if r.get("mh") == host.node_id]
    assert len(registrations) == 1
