"""Smoke + shape tests for the analytical experiments (AN1-AN7).

Each test runs a scaled-down version of the experiment and asserts the
*shape* the paper predicts (who wins, where the knee falls), not absolute
numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments.an1_reliability import run_reliability
from repro.experiments.an2_exactly_once import run_race
from repro.experiments.an3_retransmission import THRESHOLD, run_point
from repro.experiments.an4_overhead import run_overhead
from repro.experiments.an5_load_balance import run_policy
from repro.experiments.an6_causal_ablation import run_ordering
from repro.experiments.an7_handoff_cost import run_protocol
from repro.experiments.harness import Table, drain
from repro.errors import ReproError


# -- harness -----------------------------------------------------------------

def test_table_rendering():
    table = Table(title="T", columns=["a", "b"])
    table.add_row(1, 2.34567)
    table.notes.append("hello")
    text = table.render()
    assert "T" in text and "2.346" in text and "note: hello" in text
    with pytest.raises(ValueError):
        table.add_row(1)


# -- AN1 ----------------------------------------------------------------------

@pytest.mark.parametrize("protocol,expect_full", [
    ("rdp", True),
    ("itcp", True),
    ("direct", False),
])
def test_an1_reliability_shape(protocol, expect_full):
    result = run_reliability(protocol, n_hosts=4, duration=120.0,
                             wireless_loss=0.05, seed=1)
    assert result.requests > 0
    if expect_full:
        assert result.delivery_ratio == 1.0
    else:
        assert result.delivery_ratio < 1.0


# -- AN2 ----------------------------------------------------------------------

def test_an2_app_exactly_once_always():
    for offset in (0.0, 0.004, 0.02):
        out = run_race(offset)
        assert out.app_deliveries == 1


def test_an2_transmission_regimes():
    early = run_race(0.001)   # migrate before the Ack leaves
    late = run_race(0.05)     # Ack long gone
    assert not early.exactly_once_transmission
    assert early.retransmissions == 1
    assert late.exactly_once_transmission


# -- AN3 ----------------------------------------------------------------------

def test_an3_threshold_shape():
    below = run_point(THRESHOLD * 0.5, n_hosts=2, requests_per_host=10, seed=2)
    above = run_point(THRESHOLD * 40, n_hosts=2, requests_per_host=10, seed=2)
    assert below.delivered == below.requests
    assert above.delivered == above.requests
    assert below.retransmission_rate > 10 * max(above.retransmission_rate, 0.01)
    assert above.retransmission_rate < 0.3


# -- AN4 ----------------------------------------------------------------------

def test_an4_overhead_bounds_hold_exactly():
    result = run_overhead(n_migrations=5, n_reactivations=2, n_requests=4)
    assert result.update_bound_holds, result
    assert result.ack_bound_holds, result
    assert result.migrations == 5
    assert result.reactivations == 2


# -- AN5 ----------------------------------------------------------------------

def test_an5_dynamic_placement_beats_home():
    kwargs = dict(n_hosts=10, grid=3, duration=120.0, seed=3)
    home = run_policy("home", **kwargs)
    current = run_policy("current", **kwargs)
    least = run_policy("least_loaded", **kwargs)
    assert home.requests == current.requests == least.requests
    assert current.fairness > home.fairness
    assert least.fairness >= current.fairness
    assert home.hottest_share > current.hottest_share


# -- AN6 ----------------------------------------------------------------------

def test_an6_app_duplicates_zero_for_all_orderings():
    for ordering in ("causal", "fifo", "raw"):
        result = run_ordering(ordering, n_hosts=3, requests_per_host=8,
                              seed=4)
        assert result.app_duplicates == 0
        assert result.delivered == result.requests


# -- AN7 ----------------------------------------------------------------------

def test_an7_itcp_pays_for_handoffs():
    rdp = run_protocol("rdp", n_hosts=2, n_migrations=5, seed=5)
    itcp = run_protocol("itcp", n_hosts=2, n_migrations=5, seed=5)
    assert rdp.delivered == itcp.delivered
    assert rdp.forwarding_pointers == 0
    assert itcp.forwarding_pointers > 0
    assert itcp.deregack_bytes_mean > 5 * rdp.deregack_bytes_mean


# -- drain helper ---------------------------------------------------------------

def test_drain_raises_when_impossible():
    from repro.servers.echo import ManualServer
    from tests.conftest import make_world

    world = make_world()
    world.add_server("manual", ManualServer)  # never replies
    client = world.add_host("m", world.cells[0])
    client.request("manual", 1)
    with pytest.raises(ReproError):
        drain(world, max_rounds=2)
