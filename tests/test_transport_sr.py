"""Property-test battery for the selective-repeat wired transport.

The sliding-window transport (``net/reliable.py``) is a state machine of
exactly the kind where reordering/duplication bugs hide, so every
mechanism here is pinned twice over:

* **Differential stress** — seeded loss/dup/reorder schedules drive the
  selective-repeat transport against the stop-and-wait baseline
  (:class:`LegacyReliableLink`, the executable spec of at-least-once +
  dedup delivery, same role as the rescan reference in
  ``test_perf_hotpath.py``), asserting identical delivered sequences,
  exactly-once delivery, drained windows and bounded memory.
* **Golden units** — hand-computed Jacobson/Karels SRTT/RTTVAR values,
  RTO clamping and Karn backoff; :class:`AckRanges` merge semantics;
  window/batching accounting.
* **Mutation checks** — break retransmit-timer arming, Karn's rule, or
  cumulative-ack advance, and a *named* test in this file must fail
  (each mutation is applied via monkeypatch and asserted to flip the
  corresponding property helper).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import ClassVar, Dict, List, Optional, Tuple

import pytest

from repro.errors import ConfigError
from repro.net.faults import FaultPlan
from repro.net.latency import ConstantLatency
from repro.net.message import Message
from repro.net.reliable import (
    DUPACK_THRESHOLD,
    AckRanges,
    LegacyReliableLink,
    ReliableLink,
    RetryPolicy,
    RtoEstimator,
    SendWindow,
)
from repro.net.wired import WiredNetwork
from repro.sim import Simulator, TraceRecorder
from repro.types import NodeId


@dataclass(slots=True, kw_only=True)
class _Tagged(Message):
    kind: ClassVar[str] = "tagged"
    tag: str = ""


class _Sink:
    def __init__(self, name: str) -> None:
        self.node_id = NodeId(name)
        self.received: List[_Tagged] = []

    def on_wired_message(self, message: Message) -> None:
        assert isinstance(message, _Tagged)
        self.received.append(message)


class _FailureAware(_Sink):
    """A node implementing the transport-failure hook."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.failed: List[Message] = []

    def on_delivery_failure(self, message: Message) -> None:
        self.failed.append(message)


def _network(sim: Simulator, transport: str, *,
             faults: Optional[FaultPlan] = None,
             policy: Optional[RetryPolicy] = None,
             seed: int = 1, window: int = 8, max_batch: int = 4,
             latency: float = 0.01, ordering: str = "causal") -> WiredNetwork:
    return WiredNetwork(
        sim, latency=ConstantLatency(latency),
        recorder=TraceRecorder(enabled=False),
        ordering=ordering,
        faults=faults, reliable=True,
        retry=policy if policy is not None else RetryPolicy(),
        retry_rng=random.Random(seed),
        transport=transport, window=window, max_batch=max_batch)


# One randomized traffic schedule: (send time, src index, dst index).
Schedule = List[Tuple[float, int, int]]


def _make_schedule(seed: int, n_nodes: int, n_messages: int) -> Schedule:
    rng = random.Random(seed)
    schedule: Schedule = []
    clock = 0.0
    for _ in range(n_messages):
        clock += rng.random() * 0.2
        src = rng.randrange(n_nodes)
        dst = rng.randrange(n_nodes)
        while dst == src:
            dst = rng.randrange(n_nodes)
        schedule.append((clock, src, dst))
    return schedule


def _run_schedule(transport: str, schedule: Schedule, seed: int,
                  n_nodes: int, *, loss: float = 0.0, dup: float = 0.0,
                  reorder: float = 0.0, window: int = 8,
                  max_batch: int = 4) -> Tuple[WiredNetwork, List[_Sink],
                                               Dict[Tuple[int, int],
                                                    List[str]]]:
    """Drive one seeded schedule through one transport; returns the
    network, sinks, and the expected per-channel tag sequences."""
    sim = Simulator()
    faults = None
    if loss or dup or reorder:
        faults = FaultPlan(random.Random(seed + 100), loss=loss,
                           duplication=dup, reorder=reorder,
                           reorder_spread=0.25 if reorder else 0.0)
    net = _network(sim, transport, faults=faults, seed=seed,
                   window=window, max_batch=max_batch)
    sinks = [_Sink(f"n{i}") for i in range(n_nodes)]
    for sink in sinks:
        net.attach(sink)
    expected: Dict[Tuple[int, int], List[str]] = {}
    for t, src, dst in schedule:
        tag = f"{src}->{dst}#{len(expected.setdefault((src, dst), []))}"
        expected[(src, dst)].append(tag)
        sim.schedule(t, net.send, sinks[src].node_id, sinks[dst].node_id,
                     _Tagged(tag=tag))
    sim.run()
    return net, sinks, expected


def _channel_sequences(sinks: List[_Sink]) -> Dict[Tuple[int, int],
                                                   List[str]]:
    out: Dict[Tuple[int, int], List[str]] = {}
    index = {sink.node_id: i for i, sink in enumerate(sinks)}
    for sink in sinks:
        for message in sink.received:
            src, arrow = message.tag.split("->")[0], message.tag
            assert message.src is not None
            key = (index[message.src], index[sink.node_id])
            out.setdefault(key, []).append(arrow)
            assert src == str(key[0])
    return out


# -- differential stress battery ---------------------------------------------


FAULT_GRID = (
    {"loss": 0.3},
    {"dup": 0.3},
    {"reorder": 0.5},
    {"loss": 0.25, "dup": 0.15, "reorder": 0.25},
)


def test_sr_matches_reference_across_fault_schedules():
    """The battery: across seeds x fault mixes, the SR transport and the
    stop-and-wait reference deliver *identical* per-channel sequences —
    every message exactly once, in send order — and the SR window both
    stays bounded and fully drains."""
    total_fast_retx = 0
    for seed in range(6):
        for fault_mix in FAULT_GRID:
            schedule = _make_schedule(seed, n_nodes=4, n_messages=80)
            sr_net, sr_sinks, expected = _run_schedule(
                "sr", schedule, seed, 4, **fault_mix)
            legacy_net, legacy_sinks, _ = _run_schedule(
                "legacy", schedule, seed, 4, **fault_mix)
            label = f"seed={seed} faults={fault_mix}"
            sr_seqs = _channel_sequences(sr_sinks)
            assert sr_seqs == expected, label
            assert _channel_sequences(legacy_sinks) == expected, label
            # Exactly-once: per-channel equality above already forbids
            # dups within a channel; the totals close the cross-channel
            # loophole.
            assert sum(len(s.received) for s in sr_sinks) == len(schedule)
            # The transport drained: nothing in flight, queued or
            # buffered once the simulator went quiet.
            assert sr_net.transport is not None
            assert sr_net.transport.pending_count() == 0, label
            assert legacy_net.transport is not None
            assert legacy_net.transport.pending_count() == 0, label
            assert not sr_net.failures and not legacy_net.failures
            total_fast_retx += sr_net.transport.fast_retransmissions
    # The sweep must actually exercise the fast-retransmit path
    # somewhere, or the dupack machinery could rot undetected.
    assert total_fast_retx > 0


def test_sr_window_memory_stays_bounded():
    """Bounded memory: in-flight frames never exceed the configured
    window even under a same-tick burst far larger than it, and the
    receiver's SACK state stays within the window span."""
    sim = Simulator()
    net = _network(sim, "sr", seed=3, window=4, max_batch=2,
                   faults=FaultPlan(random.Random(9), loss=0.2))
    a, b = _Sink("a"), _Sink("b")
    net.attach(a)
    net.attach(b)
    transport = net.transport
    assert isinstance(transport, ReliableLink)
    for i in range(200):
        net.send(a.node_id, b.node_id, _Tagged(tag=f"m{i}"))
    peak_ranges = 0

    def probe() -> None:
        nonlocal peak_ranges
        peak_ranges = max(peak_ranges, transport.receiver_range_count())
        if sim.now < 60.0:
            sim.schedule(0.5, probe)
    sim.schedule(0.5, probe)
    sim.run()
    assert [m.tag for m in b.received] == [f"m{i}" for i in range(200)]
    assert transport.max_window_occupancy() <= 4
    # SACK gaps can only exist inside the 4-frame window span.
    assert peak_ranges <= 4
    assert transport.pending_count() == 0


def test_sr_batches_same_tick_sends():
    sim = Simulator()
    net = _network(sim, "sr", max_batch=8)
    a, b = _Sink("a"), _Sink("b")
    net.attach(a)
    net.attach(b)
    transport = net.transport
    assert isinstance(transport, ReliableLink)
    for i in range(8):
        net.send(a.node_id, b.node_id, _Tagged(tag=f"m{i}"))
    sim.run()
    assert [m.tag for m in b.received] == [f"m{i}" for i in range(8)]
    # All eight coalesced into one frame, acked by one ack.
    assert transport.frames_sent == 1
    assert transport.batched_frames == 1
    assert transport.acks_sent == 1


def test_sr_batch_splits_at_max_batch_and_ticks_do_not_merge():
    sim = Simulator()
    net = _network(sim, "sr", max_batch=3)
    a, b = _Sink("a"), _Sink("b")
    net.attach(a)
    net.attach(b)
    transport = net.transport
    assert isinstance(transport, ReliableLink)
    for i in range(7):  # one tick: frames of 3 + 3 + 1
        net.send(a.node_id, b.node_id, _Tagged(tag=f"x{i}"))
    sim.schedule(1.0, net.send, a.node_id, b.node_id, _Tagged(tag="later"))
    sim.run()
    assert [m.tag for m in b.received] == [f"x{i}" for i in range(7)] + ["later"]
    assert transport.frames_sent == 4
    assert transport.batched_frames == 2  # the two full frames of 3


def test_sr_per_message_delivery_failure_and_node_hook():
    """A frame abandoned after the retry budget surfaces one
    DeliveryFailure *per batched message* and routes each through the
    source node's ``on_delivery_failure`` hook."""
    sim = Simulator()
    net = _network(sim, "sr",
                   faults=FaultPlan(random.Random(2), loss=1.0),
                   policy=RetryPolicy(timeout=0.1, max_retries=2,
                                      jitter=0.0),
                   max_batch=4)
    a, b = _FailureAware("a"), _Sink("b")
    net.attach(a)
    net.attach(b)
    for i in range(3):
        net.send(a.node_id, b.node_id, _Tagged(tag=f"m{i}"))
    sim.run()
    assert b.received == []
    assert len(net.failures) == 3
    assert sorted(f.message.tag for f in net.failures) == ["m0", "m1", "m2"]
    assert all(f.attempts == 3 for f in net.failures)  # 1 send + 2 retries
    assert [m.tag for m in a.failed] == sorted(f.message.tag
                                               for f in net.failures)
    assert net.transport is not None and net.transport.pending_count() == 0


def test_sr_abandoned_gap_retires_receiver_state():
    """After the sender abandons a frame, the piggybacked window base on
    later traffic closes the receiver's gap (no unbounded SACK state)."""
    sim = Simulator()
    plan = FaultPlan(random.Random(0))
    # Raw ordering: the causal layer (correctly) wedges a channel behind
    # an abandoned message; here the transport itself is under test.
    net = _network(sim, "sr", faults=plan, ordering="raw",
                   policy=RetryPolicy(timeout=0.1, max_retries=1, jitter=0.0))
    a, b = _Sink("a"), _Sink("b")
    net.attach(a)
    net.attach(b)
    transport = net.transport
    assert isinstance(transport, ReliableLink)
    plan.set_loss(1.0)  # m0's frame (and retries) all die
    net.send(a.node_id, b.node_id, _Tagged(tag="m0"))
    sim.run()
    assert len(net.failures) == 1
    plan.set_loss(0.0)
    net.send(a.node_id, b.node_id, _Tagged(tag="m1"))
    sim.run()
    assert [m.tag for m in b.received] == ["m1"]
    assert transport.receiver_range_count() == 0  # gap closed by base
    assert transport.pending_count() == 0


def test_sr_abort_from_preserves_sequence_numbers():
    """abort_from clears custody but must not reset sequence counters:
    a re-attached sender's fresh frames would otherwise replay used
    numbers and be swallowed as duplicates."""
    sim = Simulator()
    plan = FaultPlan(random.Random(0))
    # Raw ordering for the same reason as the abandoned-gap test: the
    # aborted message would (correctly) wedge the causal channel.
    net = _network(sim, "sr", faults=plan, ordering="raw")
    a, b = _Sink("a"), _Sink("b")
    net.attach(a)
    net.attach(b)
    transport = net.transport
    assert isinstance(transport, ReliableLink)
    net.send(a.node_id, b.node_id, _Tagged(tag="delivered"))
    sim.run()
    plan.set_loss(1.0)
    net.send(a.node_id, b.node_id, _Tagged(tag="doomed"))
    sim.run(until=sim.now + 0.05)  # in flight, not yet delivered
    assert transport.abort_from(a.node_id) == 1
    plan.set_loss(0.0)
    sim.run()
    net.send(a.node_id, b.node_id, _Tagged(tag="fresh"))
    sim.run()
    assert [m.tag for m in b.received] == ["delivered", "fresh"]
    assert transport.pending_count() == 0
    assert transport.aborted == 1


# -- named properties the mutation checks flip --------------------------------


def _assert_losses_recovered_by_timer(n_messages: int = 30) -> None:
    """Property: with only the retransmit timer to lean on (reordering
    kept off so dupacks stay quiet), every loss is eventually repaired."""
    sim = Simulator()
    net = _network(sim, "sr",
                   faults=FaultPlan(random.Random(5), loss=0.4),
                   policy=RetryPolicy(jitter=0.0), seed=5)
    a, b = _Sink("a"), _Sink("b")
    net.attach(a)
    net.attach(b)
    for i in range(n_messages):
        sim.schedule(i * 0.05, net.send, a.node_id, b.node_id,
                     _Tagged(tag=f"m{i}"))
    sim.run(until=120.0)
    assert [m.tag for m in b.received] == [f"m{i}" for i in range(n_messages)]
    assert net.transport is not None and net.transport.pending_count() == 0


def test_retransmit_timer_recovers_all_losses():
    _assert_losses_recovered_by_timer()


def test_mutation_broken_timer_arming_fails_recovery(monkeypatch):
    """Mutation: never arm the retransmit timer -> lost frames stay lost
    and test_retransmit_timer_recovers_all_losses's property fails."""
    monkeypatch.setattr(ReliableLink, "_arm",
                        lambda self, channel, pending: None)
    with pytest.raises(AssertionError):
        _assert_losses_recovered_by_timer()


def _steady_state_retransmissions() -> int:
    """Scenario where Karn's rule is load-bearing: the real RTT (1.0s)
    dwarfs the initial RTO (0.05s), so early frames are always
    retransmitted before their ack returns.  With Karn's rule intact the
    estimator only ever sees clean samples, the backed-off RTO sticks
    above the RTT, and retransmissions stop; sampling the ambiguous acks
    instead feeds retransmission-time deltas into SRTT and collapses the
    RTO into a permanent retransmit storm."""
    sim = Simulator()
    net = _network(sim, "sr", latency=0.5,  # RTT = 1.0s
                   policy=RetryPolicy(timeout=0.05, min_timeout=0.02,
                                      max_timeout=8.0, jitter=0.0), seed=7)
    a, b = _Sink("a"), _Sink("b")
    net.attach(a)
    net.attach(b)
    n = 40
    for i in range(n):
        sim.schedule(i * 2.0, net.send, a.node_id, b.node_id,
                     _Tagged(tag=f"m{i}"))
    sim.run()
    assert len(b.received) == n
    assert net.transport is not None
    return net.transport.retransmissions


def test_karns_rule_bounds_retransmissions():
    # A handful of early timeouts while the backoff climbs past the
    # RTT, then silence: far fewer retransmissions than messages.
    assert _steady_state_retransmissions() < 20


def test_mutation_broken_karns_rule_causes_retransmit_storm(monkeypatch):
    """Mutation: sample retransmitted frames too (Karn's rule deleted)
    -> the RTO collapses below the RTT and
    test_karns_rule_bounds_retransmissions's bound fails."""
    monkeypatch.setattr(ReliableLink, "_rtt_sample_ok",
                        staticmethod(lambda pending: True))
    with pytest.raises(AssertionError):
        assert _steady_state_retransmissions() < 20


def _assert_cumulative_ack_drains_window(n_messages: int = 20) -> None:
    """Property: on a clean in-order fabric every ack is purely
    cumulative (no SACK blocks), so cumulative advance alone must drain
    the window — no retransmissions, no stuck frames."""
    sim = Simulator()
    net = _network(sim, "sr", policy=RetryPolicy(jitter=0.0),
                   window=4, max_batch=1)
    a, b = _Sink("a"), _Sink("b")
    net.attach(a)
    net.attach(b)
    for i in range(n_messages):
        sim.schedule(i * 0.001, net.send, a.node_id, b.node_id,
                     _Tagged(tag=f"m{i}"))
    sim.run(until=60.0)
    assert [m.tag for m in b.received] == [f"m{i}" for i in range(n_messages)]
    assert net.transport is not None
    assert net.transport.pending_count() == 0
    assert net.transport.retransmissions == 0


def test_cumulative_ack_advances_window():
    _assert_cumulative_ack_drains_window()


def test_mutation_broken_cumulative_advance_wedges_window(monkeypatch):
    """Mutation: ignore the cumulative ack field -> in-order traffic is
    never acked, the window wedges full and
    test_cumulative_ack_advances_window's property fails."""
    monkeypatch.setattr(ReliableLink, "_cumulative_advance",
                        lambda self, window, cum: None)
    with pytest.raises(AssertionError):
        _assert_cumulative_ack_drains_window()


# -- RtoEstimator golden units ------------------------------------------------


def test_rto_estimator_golden_jacobson_karels_sequence():
    est = RtoEstimator(initial=0.25, min_rto=0.02, max_rto=8.0)
    assert est.rto == 0.25 and est.srtt is None
    # First sample seeds SRTT = R, RTTVAR = R/2 -> RTO = R + 4*(R/2).
    assert est.sample(1.0) == pytest.approx(3.0)
    assert est.srtt == pytest.approx(1.0)
    assert est.rttvar == pytest.approx(0.5)
    # Second identical sample: RTTVAR = 0.75*0.5 + 0.25*0 = 0.375.
    assert est.sample(1.0) == pytest.approx(2.5)
    assert est.rttvar == pytest.approx(0.375)
    # A 2.0s outlier: RTTVAR = 0.75*0.375 + 0.25*|1-2| = 0.53125,
    # SRTT = 0.875*1 + 0.125*2 = 1.125 -> RTO = 1.125 + 4*0.53125.
    assert est.sample(2.0) == pytest.approx(3.25)
    assert est.srtt == pytest.approx(1.125)
    assert est.rttvar == pytest.approx(0.53125)
    assert est.samples == 3


def test_rto_estimator_clamps_min_and_max():
    est = RtoEstimator(initial=0.25, min_rto=0.5, max_rto=8.0)
    assert est.rto == 0.5  # initial below the floor is clamped up
    assert est.sample(0.01) == 0.5  # raw 0.01 + 4*0.005 = 0.03 -> floor
    est = RtoEstimator(initial=0.25, min_rto=0.02, max_rto=8.0)
    assert est.sample(10.0) == 8.0  # raw 30.0 -> ceiling


def test_rto_estimator_backoff_doubles_and_fresh_sample_resets():
    est = RtoEstimator(initial=3.0, min_rto=0.02, max_rto=8.0, backoff=2.0)
    assert est.on_timeout() == 6.0
    assert est.on_timeout() == 8.0  # capped, not 12
    assert est.on_timeout() == 8.0
    # A clean sample recomputes from SRTT/RTTVAR: backoff cleared.
    assert est.sample(1.0) == pytest.approx(3.0)


def test_rto_estimator_validation():
    with pytest.raises(ConfigError):
        RtoEstimator(min_rto=0.0)
    with pytest.raises(ConfigError):
        RtoEstimator(min_rto=2.0, max_rto=1.0)
    with pytest.raises(ConfigError):
        RtoEstimator(backoff=0.5)
    with pytest.raises(ConfigError):
        RtoEstimator().sample(-1.0)


# -- AckRanges / SendWindow units ---------------------------------------------


def test_ack_ranges_merge_and_floor():
    ranges = AckRanges()
    assert ranges.add(1) and ranges.cumulative == 1
    assert not ranges.add(1)  # duplicate
    assert ranges.add(5) and ranges.add(3) and ranges.add(7)
    assert ranges.ranges() == ((3, 3), (5, 5), (7, 7))
    assert ranges.add(4)  # bridges 3 and 5
    assert ranges.ranges() == ((3, 5), (7, 7))
    assert ranges.add(2)  # floor absorbs the 3-5 block
    assert ranges.cumulative == 5
    assert ranges.ranges() == ((7, 7),)
    assert ranges.add(6)
    assert ranges.cumulative == 7 and ranges.ranges() == ()
    assert all(s in ranges for s in range(1, 8))
    assert 8 not in ranges


def test_ack_ranges_advance_floor_clips_partial_blocks():
    ranges = AckRanges()
    for seq in (3, 4, 8, 9, 12):
        ranges.add(seq)
    ranges.advance_floor(8)
    assert ranges.cumulative == 9  # absorbed the half-covered 8-9 block
    assert ranges.ranges() == ((12, 12),)
    ranges.advance_floor(2)  # monotone: no going back
    assert ranges.cumulative == 9


def test_send_window_base_and_backlog():
    window = SendWindow(4)
    assert window.base == 1  # empty window: base == next_seq
    frame = window.allocate(NodeId("a"), NodeId("b"), ())
    assert frame.seq == 1 and window.next_seq == 2
    assert window.backlog() == 0  # allocation alone is not custody


def test_dupack_threshold_is_classic_tcp():
    assert DUPACK_THRESHOLD == 3


# -- legacy baseline stays available ------------------------------------------


def test_legacy_transport_selectable_and_isolated():
    sim = Simulator()
    net = _network(sim, "legacy")
    assert isinstance(net.transport, LegacyReliableLink)
    assert net.transport_mode == "legacy"
    a, b = _Sink("a"), _Sink("b")
    net.attach(a)
    net.attach(b)
    net.send(a.node_id, b.node_id, _Tagged(tag="m0"))
    sim.run()
    assert [m.tag for m in b.received] == ["m0"]
    with pytest.raises(ConfigError):
        _network(Simulator(), "carrier-pigeon")
