"""Tests for the per-entity timeline view."""

from __future__ import annotations

from repro.analysis.timeline import extract_timeline, lane_summary, render_timeline
from repro.net.latency import ConstantLatency
from repro.servers.echo import EchoServer

from tests.conftest import make_world


def _scenario_world():
    world = make_world()
    world.add_server("slow", EchoServer, service_time=ConstantLatency(1.0))
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    world.sim.schedule(0.1, client.request, "slow", 1)
    world.sim.schedule(0.5, host.migrate_to, world.cells[1])
    world.run_until_idle()
    return world


def test_timeline_covers_the_protocol_story():
    world = _scenario_world()
    events = extract_timeline(world.recorder)
    texts = [e.text for e in events]
    assert any(t.startswith("join") for t in texts)
    assert any(t.startswith("proxy_create") for t in texts)
    assert any(t.startswith("migrate") for t in texts)
    assert any(t.startswith("handoff_done") for t in texts)
    assert any(t.startswith("deliver") for t in texts)
    assert any(t.startswith("proxy_delete") for t in texts)
    times = [e.time for e in events]
    assert times == sorted(times)


def test_timeline_node_filter():
    world = _scenario_world()
    mh_events = extract_timeline(world.recorder, nodes=["mh:m"])
    assert mh_events and all(e.node == "mh:m" for e in mh_events)


def test_timeline_mh_filter_includes_station_events():
    world = _scenario_world()
    events = extract_timeline(world.recorder, mh="mh:m")
    nodes = {e.node for e in events}
    assert "mh:m" in nodes
    assert any(node.startswith("mss:") for node in nodes)


def test_timeline_network_rows_optional():
    world = _scenario_world()
    quiet = extract_timeline(world.recorder)
    verbose = extract_timeline(world.recorder, include_network=True)
    assert len(verbose) > len(quiet)
    assert any("send" in e.text for e in verbose)


def test_render_and_summary():
    world = _scenario_world()
    events = extract_timeline(world.recorder)
    text = render_timeline(events, title="story")
    assert "story" in text and "handoff_done" in text
    summary = lane_summary(events)
    assert summary["mh:m"] >= 2
    assert render_timeline([], title="empty").endswith("(no events)")
