"""Tests for the Traffic Information Server network."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.net.latency import ConstantLatency
from repro.servers.tis_network import TisNetwork

from tests.conftest import make_world


def _build_tis(world, use_routing=True, cache_ttl=0.0, lookup_timeout=5.0):
    return TisNetwork(
        world.sim, world.wired, world.directory,
        partitions={
            "tisA": ["r1", "r2"],
            "tisB": ["r3", "r4"],
            "tisC": ["r5"],
        },
        overlay_edges=[("tisA", "tisB"), ("tisB", "tisC")],
        instruments=world.instruments,
        service_time=ConstantLatency(0.02),
        use_routing=use_routing,
        cache_ttl=cache_ttl,
        lookup_timeout=lookup_timeout,
    )


def test_partition_validation(world):
    with pytest.raises(ConfigError):
        TisNetwork(world.sim, world.wired, world.directory,
                   partitions={"a": ["r1"], "b": ["r1"]},
                   overlay_edges=[("a", "b")])
    with pytest.raises(ConfigError):
        TisNetwork(world.sim, world.wired, world.directory,
                   partitions={"a": ["r1"]}, overlay_edges=[("a", "ghost")])


def test_directory_entries(world):
    tis = _build_tis(world)
    assert world.directory.lookup("tis.tisA") == tis.servers["tisA"].node_id
    assert world.directory.contains("tis")
    assert tis.owner_of("r3").name == "tisB"
    assert tis.regions() == ["r1", "r2", "r3", "r4", "r5"]


def test_local_query(world):
    tis = _build_tis(world)
    tis.apply_external_update("r1", 7.0)
    client = world.add_host("m", world.cells[0])
    p = client.request("tis.tisA", {"op": "query", "region": "r1"})
    world.run_until_idle()
    assert p.result["level"] == 7.0
    assert p.result["region"] == "r1"


def test_remote_query_routes_through_overlay(world):
    tis = _build_tis(world)
    tis.apply_external_update("r5", 3.0)
    client = world.add_host("m", world.cells[0])
    # Ask tisA about a region owned by tisC: two overlay hops away.
    p = client.request("tis.tisA", {"op": "query", "region": "r5"})
    world.run_until_idle()
    assert p.result["level"] == 3.0
    assert tis.servers["tisA"].remote_lookups == 1


def test_remote_query_by_flooding(world):
    tis = _build_tis(world, use_routing=False)
    tis.apply_external_update("r5", 4.0)
    client = world.add_host("m", world.cells[0])
    p = client.request("tis.tisA", {"op": "query", "region": "r5"})
    world.run_until_idle()
    assert p.result["level"] == 4.0


def test_query_unknown_region_times_out(world):
    tis = _build_tis(world, use_routing=False, lookup_timeout=1.0)
    client = world.add_host("m", world.cells[0])
    p = client.request("tis.tisA", {"op": "query", "region": "atlantis"})
    world.run_until_idle()
    assert "error" in p.result


def test_remote_update_routed_to_owner(world):
    tis = _build_tis(world)
    client = world.add_host("m", world.cells[0])
    p = client.request("tis.tisA", {"op": "update", "region": "r4",
                                    "level": 9.5})
    world.run_until_idle()
    assert p.result["ok"] is True
    assert tis.level_of("r4") == 9.5
    assert p.result["version"] == 2


def test_update_bumps_version(world):
    tis = _build_tis(world)
    v1 = tis.apply_external_update("r1", 1.0)
    v2 = tis.apply_external_update("r1", 2.0)
    assert v2 == v1 + 1


def test_replication_populates_neighbor_caches(world):
    tis = _build_tis(world, cache_ttl=100.0)
    tis.apply_external_update("r3", 6.0)   # owner tisB replicates to A, C
    world.run_until_idle()
    assert tis.servers["tisA"].cache["r3"].level == 6.0
    assert tis.servers["tisC"].cache["r3"].level == 6.0


def test_cached_query_avoids_overlay(world):
    tis = _build_tis(world, cache_ttl=100.0)
    tis.apply_external_update("r3", 6.0)
    world.run_until_idle()
    client = world.add_host("m", world.cells[0])
    p = client.request("tis.tisA", {"op": "query", "region": "r3"})
    world.run_until_idle()
    assert p.result["level"] == 6.0
    assert tis.servers["tisA"].remote_lookups == 0
    assert tis.servers["tisA"].cache_hits == 1


def test_stale_cache_falls_back_to_overlay(world):
    tis = _build_tis(world, cache_ttl=0.5)
    tis.apply_external_update("r3", 6.0)
    world.run(until=10.0)  # let the replica age out
    client = world.add_host("m", world.cells[0])
    p = client.request("tis.tisA", {"op": "query", "region": "r3"})
    world.run_until_idle()
    assert p.result["level"] == 6.0
    assert tis.servers["tisA"].remote_lookups == 1


def test_subscription_on_owned_region(world):
    tis = _build_tis(world)
    client = world.add_host("m", world.cells[0])
    sub = client.subscribe("tis.tisA", {"region": "r1", "threshold": 2.0})
    world.run(until=1.0)
    tis.apply_external_update("r1", 5.0)   # jump of 5 >= 2 -> notify
    world.run(until=2.0)
    tis.apply_external_update("r1", 5.5)   # change of 0.5 < 2 -> silent
    world.run(until=3.0)
    tis.apply_external_update("r1", 9.0)   # change of 3.5 -> notify
    world.run(until=4.0)
    assert len(sub.notifications) == 2
    assert sub.notifications[-1]["level"] == 9.0
    tis.servers["tisA"].end_subscription(sub.request_id, "closed")
    world.run_until_idle()
    assert not sub.active


def test_subscription_on_remote_region_registered_at_owner(world):
    tis = _build_tis(world)
    client = world.add_host("m", world.cells[0])
    sub = client.subscribe("tis.tisA", {"region": "r5", "threshold": 1.0})
    world.run(until=1.0)
    assert len(tis.servers["tisC"].subs) == 1
    tis.apply_external_update("r5", 4.0)
    world.run(until=2.0)
    assert len(sub.notifications) == 1
    tis.servers["tisC"].end_subscription(sub.request_id)
    world.run_until_idle()


def test_subscriber_receives_despite_migration(world):
    tis = _build_tis(world)
    client = world.add_host("m", world.cells[0])
    host = world.hosts["m"]
    sub = client.subscribe("tis.tisA", {"region": "r1", "threshold": 1.0})
    world.run(until=1.0)
    host.migrate_to(world.cells[2])
    world.run(until=2.0)
    tis.apply_external_update("r1", 8.0)
    world.run(until=3.0)
    assert len(sub.notifications) == 1
    tis.servers["tisA"].end_subscription(sub.request_id)
    world.run_until_idle()


def test_unknown_tis_operation(world):
    _build_tis(world)
    client = world.add_host("m", world.cells[0])
    p = client.request("tis.tisA", {"op": "dance"})
    world.run_until_idle()
    assert "error" in p.result
