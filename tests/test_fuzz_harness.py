"""The deterministic fuzz harness: schedule generation, replayable
runs, byte-identical determinism, shrinking, repro files and the CLI."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.cli import main
from repro.verify import (
    FuzzCase,
    FuzzConfig,
    FuzzOp,
    generate_case,
    load_case,
    run_campaign,
    run_case,
    save_repro,
    shrink_case,
)
from repro.verify.fuzz import PROTOCOLS


class TestGeneration:
    def test_same_seed_same_case(self):
        assert generate_case(42) == generate_case(42)

    def test_different_seeds_differ(self):
        assert generate_case(1) != generate_case(2)

    def test_schedule_shape(self):
        config = FuzzConfig(n_hosts=2, ops_per_host=10)
        case = generate_case(7, config)
        assert len(case.ops) == 20
        assert all(op.host in ("mh0", "mh1") for op in case.ops)
        assert all(1.0 <= op.time <= config.duration for op in case.ops)
        times = [op.time for op in case.ops]
        assert times == sorted(times)
        assert 0.0 <= case.profile.wireless_loss <= config.max_loss


class TestDeterminism:
    def test_same_seed_byte_identical_canonical_traces(self):
        # The determinism contract of the whole harness: two in-process
        # runs of one seed produce the same canonical trace stream even
        # though the raw process-global id counters have advanced.
        case = generate_case(11)
        first = run_case(case, "rdp", keep_trace=True)
        second = run_case(case, "rdp", keep_trace=True)
        assert first.trace, "expected a non-empty trace"
        assert first.trace == second.trace
        assert first.invariants_hit() == second.invariants_hit()

    def test_trace_canonicalization_masks_global_counters(self):
        case = generate_case(11)
        trace = run_case(case, "rdp", keep_trace=True).trace
        joined = "\n".join(trace)
        assert "msg_id=m1 " in joined or "msg_id=m1\n" in joined or \
            any("msg_id=m1" in line for line in trace)
        assert "detail=" not in joined  # free-text ids are dropped


class TestRdpHoldsInvariants:
    def test_small_campaign_is_clean(self):
        campaign = run_campaign(seeds=15, base_seed=0, protocol="rdp",
                                shrink=False)
        assert campaign.ok, [f.invariants for f in campaign.failures]
        assert campaign.requests_delivered == campaign.requests_issued > 0


class TestDirectBaselineCaughtByOracle:
    def test_direct_loses_results_and_shrinks(self, tmp_path):
        campaign = run_campaign(seeds=5, base_seed=0, protocol="direct",
                                shrink=True, out_dir=tmp_path)
        assert not campaign.ok
        failure = campaign.failures[0]
        assert "no_lost_result" in failure.invariants
        # The shrunk schedule is no bigger and still reproduces.
        original = generate_case(failure.seed)
        assert len(failure.shrunk.ops) <= len(original.ops)
        replay = run_case(failure.shrunk, "direct")
        assert "no_lost_result" in replay.invariants_hit()
        # ... and was written as a replayable seed file.
        assert failure.repro_path is not None and failure.repro_path.exists()
        loaded_case, protocol = load_case(failure.repro_path)
        assert protocol == "direct"
        assert loaded_case == failure.shrunk


class TestShrinking:
    def test_shrink_keeps_seed_and_profile(self):
        case = generate_case(0)
        result = run_case(case, "direct")
        assert not result.ok
        shrunk = shrink_case(case, "direct", result.invariants_hit())
        assert shrunk.seed == case.seed
        assert shrunk.profile == case.profile
        assert 1 <= len(shrunk.ops) <= len(case.ops)

    def test_shrink_of_passing_case_is_identity(self):
        case = generate_case(0)
        assert shrink_case(case, "rdp") == case


class TestReproFiles:
    def test_round_trip(self, tmp_path):
        case = generate_case(3)
        path = save_repro(tmp_path / "case.json", case, "rdp")
        loaded, protocol = load_case(path)
        assert (loaded, protocol) == (case, "rdp")

    def test_rejects_foreign_files(self, tmp_path):
        from repro.errors import ConfigError

        path = tmp_path / "bogus.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ConfigError):
            load_case(path)

    def test_handcrafted_case_runs(self):
        # Ops built by hand (as after editing a repro file) replay fine;
        # state guards make any schedule valid.
        case = FuzzCase(
            seed=1, profile=generate_case(1).profile, config=FuzzConfig(),
            ops=(
                FuzzOp(time=2.0, op="request", host="mh0", arg=1),
                FuzzOp(time=3.0, op="activate", host="mh0"),   # no-op: active
                FuzzOp(time=4.0, op="migrate", host="mh0", arg=2),
                FuzzOp(time=5.0, op="resend", host="mh0", arg=0),
            ))
        result = run_case(case, "rdp")
        assert result.ok


class TestCli:
    def test_fuzz_clean_run_exits_zero(self, capsys):
        assert main(["fuzz", "--seeds", "3"]) == 0
        out = capsys.readouterr().out
        assert "0 failing seeds" in out

    def test_fuzz_direct_fails_and_writes_repros(self, tmp_path, capsys):
        code = main(["fuzz", "--seeds", "2", "--protocol", "direct",
                     "--out", str(tmp_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "no_lost_result" in out
        written = list(tmp_path.glob("direct-seed*.json"))
        assert written

    def test_fuzz_replay_reports_violations(self, tmp_path, capsys):
        case = generate_case(0)
        path = save_repro(tmp_path / "direct.json", case, "direct")
        assert main(["fuzz", "--replay", str(path)]) == 1
        assert "no_lost_result" in capsys.readouterr().out

    def test_fuzz_replay_clean_file_exits_zero(self, tmp_path, capsys):
        case = generate_case(0)
        path = save_repro(tmp_path / "rdp.json", case, "rdp")
        assert main(["fuzz", "--replay", str(path)]) == 0
        assert "no violations" in capsys.readouterr().out

    def test_protocol_choices_cover_baselines(self):
        assert set(PROTOCOLS) == {"rdp", "mobile_ip", "itcp", "direct"}


class TestOtherProtocolsUnderOracle:
    @pytest.mark.parametrize("protocol", ["mobile_ip", "itcp"])
    def test_reliability_equalized_baselines_stay_clean(self, protocol):
        # Both keep RDP's store-and-retransmit reliability, so the oracle
        # must not flag them (they differ in placement/state cost only).
        for seed in range(3):
            result = run_case(generate_case(seed), protocol)
            assert result.ok, (protocol, seed, result.invariants_hit())
