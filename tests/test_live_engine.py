"""The wall-clock engine honours the simulator's scheduling contract.

Protocol entities program against :class:`repro.engine.Engine`; these
tests pin that :class:`repro.live.engine.AsyncioEngine` is observably
interchangeable with :class:`repro.sim.Simulator` — same negative-delay
error, same cancellation semantics, same :class:`repro.sim.Timer`
behaviour — and regression-test the proxy redelivery-timer symmetry that
only *matters* under a wall-clock engine (an uncancelled timer there
fires for real after the proxy's state moved on).
"""

import asyncio
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.core.protocol import (  # noqa: E402
    AckForwardMsg,
    ResultBounceMsg,
    ServerResultMsg,
)
from repro.core.proxy import Proxy  # noqa: E402
from repro.engine import Engine, ScheduledEvent  # noqa: E402
from repro.errors import SchedulingError  # noqa: E402
from repro.instruments import Instruments  # noqa: E402
from repro.live.clock import LiveClock  # noqa: E402
from repro.live.engine import AsyncioEngine, LiveEvent  # noqa: E402
from repro.sim import Simulator, Timer  # noqa: E402
from repro.types import NodeId, ProxyId, RequestId  # noqa: E402


def run_live(coro_or_delay, setup):
    """Run *setup* against a fresh AsyncioEngine, then the loop for a bit."""
    loop = asyncio.new_event_loop()
    try:
        engine = AsyncioEngine(loop, LiveClock.start())
        out = setup(engine)
        loop.run_until_complete(asyncio.sleep(coro_or_delay))
        return engine, out
    finally:
        loop.close()


# -- engine contract --------------------------------------------------------


def test_satisfies_engine_protocols():
    loop = asyncio.new_event_loop()
    try:
        engine = AsyncioEngine(loop, LiveClock.start())
        assert isinstance(engine, Engine)
        event = engine.schedule(1.0, lambda: None, label="x")
        assert isinstance(event, ScheduledEvent)
        assert isinstance(event, LiveEvent)
        event.cancel()
    finally:
        loop.close()


def test_negative_delay_raises_like_the_simulator():
    loop = asyncio.new_event_loop()
    try:
        engine = AsyncioEngine(loop, LiveClock.start())
        with pytest.raises(SchedulingError):
            engine.schedule(-0.1, lambda: None, label="past")
        with pytest.raises(SchedulingError):
            Simulator().schedule(-0.1, lambda: None, label="past")
    finally:
        loop.close()


def test_schedule_fires_with_args():
    fired = []
    _, _ = run_live(0.05, lambda e: e.schedule(
        0.01, lambda a, b: fired.append((a, b)), 1, 2, label="t"))
    assert fired == [(1, 2)]


def test_cancel_prevents_firing_and_is_idempotent():
    fired = []

    def setup(engine):
        event = engine.schedule(0.01, fired.append, 1, label="t")
        event.cancel()
        event.cancel()  # idempotent
        assert event.cancelled
        return event

    _, event = run_live(0.05, setup)
    assert fired == []
    assert event.cancelled and not event.fired


def test_cancel_after_firing_is_a_noop():
    def setup(engine):
        return engine.schedule(0.01, lambda: None, label="t")

    _, event = run_live(0.05, setup)
    assert event.fired
    event.cancel()
    assert not event.cancelled  # fired wins; cancel after the fact is moot


def test_now_advances_with_wall_time():
    def setup(engine):
        return engine.now

    engine, before = run_live(0.03, setup)
    assert engine.now >= before + 0.02


def test_sim_timer_runs_on_the_live_engine():
    """:class:`repro.sim.Timer` (restart/cancel) must work unchanged —
    the MSS, MH and client retry logic all build on it."""
    fired = []

    def setup(engine):
        timer = Timer(engine, lambda: fired.append("a"), label="t")
        timer.restart(0.01)
        timer.restart(0.02)  # restart supersedes the armed event
        cancelled = Timer(engine, lambda: fired.append("b"), label="t2")
        cancelled.restart(0.01)
        cancelled.cancel()
        return timer

    run_live(0.08, setup)
    assert fired == ["a"]


# -- proxy redelivery-timer symmetry (regression) ---------------------------


class FakeMssHost:
    """Minimal :class:`repro.core.proxy.ProxyHost`."""

    def __init__(self):
        self.node_id = NodeId("mss:s0")
        self.sent = []
        self.paged = []

    def proxy_wired_send(self, dst, message):
        self.sent.append((dst, message))

    def resolve_service(self, service):
        return NodeId("srv:app0")

    def remove_proxy(self, proxy_id):
        pass

    def proxy_page_mh(self, mh, reply_to):
        self.paged.append(mh)


def _bounce_then_ack(engine):
    """Result in custody -> bounce arms redelivery -> Ack lands."""
    host = FakeMssHost()
    proxy = Proxy(engine, host, NodeId("mh:h0"), ProxyId("px1"),
                  Instruments.disabled())
    rid = RequestId("h0-r1")
    proxy.admit_request(rid, "app", {"n": 1})
    proxy.handle_server_result(ServerResultMsg(
        request_id=rid, proxy_id=proxy.proxy_id, payload="ok"))
    proxy.handle_result_bounce(ResultBounceMsg(
        mh=proxy.mh, proxy_id=proxy.proxy_id, request_id=rid))
    assert rid in proxy._bounce_timers, "bounce did not arm a timer"
    timer = proxy._bounce_timers[rid]
    record = proxy.requestlist[rid]
    proxy.handle_ack_forward(AckForwardMsg(
        mh=proxy.mh, proxy_id=proxy.proxy_id, request_id=rid,
        delivery_id=record.delivery_id, del_proxy=False))
    return proxy, host, timer, rid


def test_ack_cancels_bounce_timer_under_the_simulator():
    sim = Simulator()
    proxy, host, timer, rid = _bounce_then_ack(sim)
    assert not proxy._bounce_timers
    assert rid not in proxy._bounce_retries
    assert timer.cancelled
    forwards_before = len(host.sent)
    sim.run(until=20.0)  # past _BOUNCE_RETRY_CAP
    assert len(host.sent) == forwards_before, (
        "a cancelled redelivery timer still fired")
    assert not host.paged


def test_ack_cancels_bounce_timer_under_the_live_engine():
    """The asymmetry this regression pins: under a wall-clock engine an
    unpopped timer actually fires after the Ack, re-forwarding a result
    the MH already delivered."""
    loop = asyncio.new_event_loop()
    try:
        engine = AsyncioEngine(loop, LiveClock.start())
        proxy, host, timer, rid = _bounce_then_ack(engine)
        assert not proxy._bounce_timers
        assert rid not in proxy._bounce_retries
        assert timer.cancelled
        forwards_before = len(host.sent)
        # Run the loop past the minimum bounce delay; a leaked timer
        # would fire here (delay for forward_count=1 is 1.0s, so give
        # the cancelled handle every chance at 1.2s).
        loop.run_until_complete(asyncio.sleep(1.2))
        assert len(host.sent) == forwards_before, (
            "a cancelled redelivery timer fired on the live engine")
        assert not host.paged
    finally:
        loop.close()


def test_proxy_delete_clears_bounce_timers():
    sim = Simulator()
    host = FakeMssHost()
    proxy = Proxy(sim, host, NodeId("mh:h0"), ProxyId("px2"),
                  Instruments.disabled())
    rid = RequestId("h0-r2")
    proxy.admit_request(rid, "app", None)
    proxy.handle_server_result(ServerResultMsg(
        request_id=rid, proxy_id=proxy.proxy_id, payload="ok"))
    proxy.handle_result_bounce(ResultBounceMsg(
        mh=proxy.mh, proxy_id=proxy.proxy_id, request_id=rid))
    timer = proxy._bounce_timers[rid]
    proxy._cancel_ack_timers()
    assert timer.cancelled
    assert not proxy._bounce_timers and not proxy._bounce_retries
