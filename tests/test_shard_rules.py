"""Golden and mutation tests for the shard-safety passes (SHD001-006).

Fixture trees reuse the live tree's relative paths (``stations/mss.py``,
``core/proxy.py`` ...) so the ownership spec classifies them exactly as
it classifies the real code.  Each rule gets a violating fixture and a
clean twin; three mutation tests then re-introduce real shard violations
into a copy of the live tree and prove ``analyze`` fails with exactly
the named rule.
"""

from __future__ import annotations

import json
import pathlib
import re
import shutil
import textwrap

import pytest

import repro
from repro.analysis.static import (
    classify_path,
    load_baseline,
    load_justifications,
    run_analysis,
    unjustified,
)
from repro.experiments.cli import main

REPRO_ROOT = pathlib.Path(repro.__file__).resolve().parent
REPO_ROOT = REPRO_ROOT.parents[1]
BASELINE = REPO_ROOT / "ANALYSIS_BASELINE.json"


def analyze(tmp_path, sources, rules=None):
    for name, text in sources.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text))
    selected = {rules} if isinstance(rules, str) else rules
    return run_analysis(tmp_path, selected)


# -- path classification ----------------------------------------------------

def test_classify_path_components_and_roles():
    assert classify_path("stations/mss.py").component == "mss"
    assert classify_path("src/repro/stations/mss.py").component == "mss"
    assert classify_path("core/proxy.py").component == "proxy"
    assert classify_path("hosts/mobile_host.py").component == "mh"
    assert classify_path("servers/echo.py").component == "server"
    assert classify_path("servers/tis_network.py").role == "harness"
    assert classify_path("net/wired.py").role == "channel"
    assert classify_path("sim/simulator.py").role == "kernel"
    assert classify_path("world.py").role == "harness"
    assert classify_path("core/protocol.py").role == "data"
    assert classify_path("something_new.py").role == "harness"


# -- SHD001: cross-component attribute writes -------------------------------

def test_shd001_fires_on_foreign_attribute_write(tmp_path):
    result = analyze(tmp_path, {"stations/mss.py": '''
        class MobileSupportStation:
            def poke(self, proxy: "Proxy") -> None:
                proxy.currentloc = self.node_id
    '''}, rules="SHD001")
    assert [f.rule for f in result.findings] == ["SHD001"]
    assert "proxy-owned" in result.findings[0].message
    assert "currentloc" in result.findings[0].message


def test_shd001_quiet_on_own_state_and_method_calls(tmp_path):
    result = analyze(tmp_path, {"stations/mss.py": '''
        class MobileSupportStation:
            def poke(self, proxy: "Proxy") -> None:
                self.count = 1
                proxy.handle_update(self.node_id)
    '''}, rules="SHD001")
    assert result.findings == []


def test_shd001_quiet_in_harness_files(tmp_path):
    result = analyze(tmp_path, {"world.py": '''
        class World:
            def wire(self, proxy: "Proxy") -> None:
                proxy.currentloc = "mss1"
    '''}, rules="SHD001")
    assert result.findings == []


# -- SHD002: retained foreign references ------------------------------------

def test_shd002_fires_on_retained_peer_station(tmp_path):
    result = analyze(tmp_path, {"stations/mss.py": '''
        class MobileSupportStation:
            def adopt(self, other: "MobileSupportStation") -> None:
                self.peer = other
    '''}, rules="SHD002")
    assert [f.rule for f in result.findings] == ["SHD002"]
    assert "self.peer" in result.findings[0].message


def test_shd002_quiet_on_sanctioned_colocations(tmp_path):
    # The MSS proxy registry and Proxy(self, ...) hosting capture are the
    # declared co-locations (ownership.ALLOWED_REFS / HOSTED_BY).
    result = analyze(tmp_path, {"stations/mss.py": '''
        class Proxy:
            pass

        class MobileSupportStation:
            def create(self, pid: str) -> None:
                proxy = Proxy(self, pid)
                self.proxies[pid] = proxy
    '''}, rules="SHD002")
    assert result.findings == []


def test_shd002_fires_on_component_object_in_message(tmp_path):
    result = analyze(tmp_path, {"stations/mss.py": '''
        class Message:
            pass

        class LocateMsg(Message):
            kind = "locate"

        class MobileSupportStation:
            def locate(self, host: "MobileHost") -> None:
                self.send(LocateMsg(host=host))
    '''}, rules="SHD002")
    assert [f.rule for f in result.findings] == ["SHD002"]
    assert "LocateMsg" in result.findings[0].message
    assert "ids and values" in result.findings[0].message


def test_shd002_quiet_when_message_carries_ids(tmp_path):
    result = analyze(tmp_path, {"stations/mss.py": '''
        class Message:
            pass

        class LocateMsg(Message):
            kind = "locate"

        class MobileSupportStation:
            def locate(self, host_id: str) -> None:
                self.send(LocateMsg(host=host_id))
    '''}, rules="SHD002")
    assert result.findings == []


# -- SHD003: module-level mutable containers --------------------------------

def test_shd003_fires_on_handler_mutated_module_dict(tmp_path):
    result = analyze(tmp_path, {"stations/mss.py": '''
        _cache = {}

        class MobileSupportStation:
            def handle(self, key: str) -> None:
                _cache[key] = 1
    '''}, rules="SHD003")
    assert [f.rule for f in result.findings] == ["SHD003"]
    assert "_cache" in result.findings[0].message
    assert "MobileSupportStation.handle" in result.findings[0].message


def test_shd003_quiet_on_read_only_module_table(tmp_path):
    result = analyze(tmp_path, {"stations/mss.py": '''
        _TABLE = {"a": 1}

        class MobileSupportStation:
            def handle(self, key: str) -> int:
                return _TABLE[key]
    '''}, rules="SHD003")
    assert result.findings == []


def test_shd003_fires_through_helper_call_chain(tmp_path):
    # The mutation sits in a module helper the handler calls — the call
    # graph must chase it there.
    result = analyze(tmp_path, {"stations/mss.py": '''
        _cache = {}

        def _remember(key: str) -> None:
            _cache[key] = 1

        class MobileSupportStation:
            def handle(self, key: str) -> None:
                _remember(key)
    '''}, rules="SHD003")
    assert [f.rule for f in result.findings] == ["SHD003"]


def test_shd003_quiet_in_harness_files(tmp_path):
    result = analyze(tmp_path, {"presets.py": '''
        PRESETS = {}

        def register(name: str) -> None:
            PRESETS[name] = name
    '''}, rules="SHD003")
    assert result.findings == []


# -- SHD004: RNG-stream ownership -------------------------------------------

def test_shd004_fires_on_foreign_stream_draw(tmp_path):
    result = analyze(tmp_path, {"core/proxy.py": '''
        class Proxy:
            def __init__(self, rng) -> None:
                self.rng = rng.stream("faults.wired")
    '''}, rules="SHD004")
    assert [f.rule for f in result.findings] == ["SHD004"]
    assert "faults.wired" in result.findings[0].message
    assert "proxy component" in result.findings[0].message


def test_shd004_fires_on_undeclared_stream(tmp_path):
    result = analyze(tmp_path, {"core/proxy.py": '''
        class Proxy:
            def __init__(self, rng) -> None:
                self.rng = rng.stream("proxy.jitter")
    '''}, rules="SHD004")
    assert [f.rule for f in result.findings] == ["SHD004"]
    assert "STREAM_OWNERS" in result.findings[0].hint


def test_shd004_quiet_for_owners_and_harness(tmp_path):
    result = analyze(tmp_path, {
        "net/faults.py": '''
            class FaultPlan:
                def __init__(self, rng) -> None:
                    self.rng = rng.stream("faults.wired")
        ''',
        "mobility/driver.py": '''
            class MobilityDriver:
                def __init__(self, rng) -> None:
                    self.rng = rng.stream("mobility.mh1")
        ''',
        "world.py": '''
            def build(rng):
                return rng.stream("faults.wired")
        ''',
    }, rules="SHD004")
    assert result.findings == []


# -- SHD005: foreign Simulator access ---------------------------------------

def test_shd005_fires_on_foreign_sim_access(tmp_path):
    result = analyze(tmp_path, {"hosts/api.py": '''
        class RdpClient:
            def now_of(self, mss: "MobileSupportStation") -> float:
                return mss.sim.now
    '''}, rules="SHD005")
    assert [f.rule for f in result.findings] == ["SHD005"]
    assert "mss component" in result.findings[0].message


def test_shd005_quiet_on_own_and_sanctioned_sim(tmp_path):
    result = analyze(tmp_path, {"hosts/api.py": '''
        class RdpClient:
            def __init__(self, host: "MobileHost") -> None:
                self.host = host

            def now(self) -> float:
                return self.host.sim.now
    '''}, rules="SHD005")
    assert result.findings == []


# -- SHD006: captures in scheduled callbacks --------------------------------

def test_shd006_fires_on_component_event_payload(tmp_path):
    result = analyze(tmp_path, {"stations/mss.py": '''
        class MobileSupportStation:
            def defer(self, proxy: "Proxy") -> None:
                self.sim.schedule(1.0, self._fire, proxy)
    '''}, rules="SHD006")
    assert [f.rule for f in result.findings] == ["SHD006"]
    assert "proxy" in result.findings[0].message


def test_shd006_fires_on_closure_capture(tmp_path):
    result = analyze(tmp_path, {"stations/mss.py": '''
        class MobileSupportStation:
            def defer(self, host: "MobileHost") -> None:
                self.sim.schedule(1.0, lambda: host.wake())
    '''}, rules="SHD006")
    assert [f.rule for f in result.findings] == ["SHD006"]
    assert "'host'" in result.findings[0].message


def test_shd006_fires_on_foreign_bound_method(tmp_path):
    result = analyze(tmp_path, {"net/wireless.py": '''
        class WirelessHost:
            def on_wireless_message(self, message) -> None:
                pass

        class WirelessChannel:
            def send(self, host: "WirelessHost", message) -> None:
                self.sim.schedule(1.0, host.on_wireless_message, message)
    '''}, rules="SHD006")
    assert [f.rule for f in result.findings] == ["SHD006"]
    assert "bound method" in result.findings[0].message


def test_shd006_quiet_on_ids_and_data_attributes(tmp_path):
    # Ids, data attributes read at schedule time, and self's own bound
    # methods capture nothing foreign.
    result = analyze(tmp_path, {"net/wireless.py": '''
        class WirelessStation:
            cell_id: str

        class WirelessChannel:
            def send(self, station: "WirelessStation", host_id: str,
                     message) -> None:
                self.sim.schedule(1.0, self._deliver, station.cell_id,
                                  host_id, message)

            def _deliver(self, cell: str, host_id: str, message) -> None:
                pass
    '''}, rules="SHD006")
    assert result.findings == []


# -- live tree self-checks ---------------------------------------------------

def test_live_tree_is_shard_clean():
    """SHD001-006 must run clean on the committed tree: the machine-checked
    precondition for the sharded-kernel refactor (ROADMAP)."""
    result = run_analysis(REPRO_ROOT,
                          {f"SHD00{i}" for i in range(1, 7)})
    assert result.findings == [], "\n".join(
        f.render() for f in result.findings)


def test_every_baseline_entry_is_justified():
    """The ratchet may hold debt, but never undocumented debt."""
    baseline = load_baseline(BASELINE)
    justifications = load_justifications(BASELINE)
    assert unjustified(baseline, justifications) == []


# -- mutation tests: seeded violations flip exactly the named rule ----------

@pytest.fixture
def mutable_tree(tmp_path):
    tree = tmp_path / "repro"
    shutil.copytree(REPRO_ROOT, tree,
                    ignore=shutil.ignore_patterns("__pycache__"))
    return tree


def _analyze_out(mutable_tree, capsys):
    code = main(["analyze", "--root", str(mutable_tree), "--no-baseline",
                 "--select", "SHD"])
    return code, capsys.readouterr().out


def test_direct_foreign_proxy_write_flips_shd001(mutable_tree, capsys):
    mss = mutable_tree / "stations" / "mss.py"
    text = mss.read_text()
    anchor = "proxy = self._create_proxy(msg.mh, currentloc=msg.resp_mss)"
    assert anchor in text
    mss.write_text(text.replace(
        anchor, anchor + "\n        proxy.currentloc = msg.resp_mss"))

    code, out = _analyze_out(mutable_tree, capsys)
    assert code == 1
    assert "SHD001" in out
    assert "currentloc" in out
    rules = set(re.findall(r":\d+: (SHD\d+) ", out))
    assert rules == {"SHD001"}


def test_mss_object_in_scheduled_closure_flips_shd006(mutable_tree, capsys):
    mss = mutable_tree / "stations" / "mss.py"
    mss.write_text(mss.read_text() + textwrap.dedent('''

        def _shard_mutation(sim: "Simulator",
                            other: "MobileSupportStation") -> None:
            sim.schedule(0.0, lambda: other.node_id)
    '''))

    code, out = _analyze_out(mutable_tree, capsys)
    assert code == 1
    assert "SHD006" in out
    assert "'other'" in out
    rules = set(re.findall(r":\d+: (SHD\d+) ", out))
    assert rules == {"SHD006"}


def test_foreign_stream_draw_in_proxy_flips_shd004(mutable_tree, capsys):
    proxy = mutable_tree / "core" / "proxy.py"
    proxy.write_text(proxy.read_text() + textwrap.dedent('''

        def _shard_mutation_rng(rng):
            return rng.stream("faults.wired")
    '''))

    code, out = _analyze_out(mutable_tree, capsys)
    assert code == 1
    assert "SHD004" in out
    assert "faults.wired" in out
    rules = set(re.findall(r":\d+: (SHD\d+) ", out))
    assert rules == {"SHD004"}


def test_reverting_wireless_to_object_capture_flips_shd006(
        mutable_tree, capsys):
    """Re-introducing the pre-refactor wireless delivery (scheduling live
    station/host objects instead of ids) must fail the SHD gate."""
    wireless = mutable_tree / "net" / "wireless.py"
    text = wireless.read_text()
    fixed = ("self.sim.schedule(delay, self._deliver_uplink, station.cell_id,\n"
             "                          host.node_id, message, "
             "label=f\"wl-up:{message.kind}\")")
    assert fixed in text
    wireless.write_text(text.replace(
        fixed,
        "self.sim.schedule(delay, self._deliver_uplink_obj, station,\n"
        "                          host.node_id, message, "
        "label=f\"wl-up:{message.kind}\")"))

    code, out = _analyze_out(mutable_tree, capsys)
    assert code == 1
    assert "SHD006" in out


def test_shard_context_is_cached_per_tree(tmp_path):
    """All six rules share one ClassIndex/TypeEnv cache per run."""
    from repro.analysis.static.model import SourceTree
    from repro.analysis.static.shard_rules import _context

    (tmp_path / "mod.py").write_text("class A:\n    pass\n")
    tree = SourceTree.load(tmp_path)
    assert _context(tree) is _context(tree)
