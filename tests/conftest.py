"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import World, WorldConfig
from repro.config import LatencySpec
from repro.sim import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


def make_world(**overrides) -> World:
    """A small deterministic world: 3 cells in a line, constant latencies."""
    defaults = dict(
        n_cells=3,
        topology="line",
        wired_latency=LatencySpec(kind="constant", mean=0.010),
        wireless_latency=LatencySpec(kind="constant", mean=0.005),
    )
    defaults.update(overrides)
    return World(WorldConfig(**defaults))


@pytest.fixture
def world() -> World:
    return make_world()
