"""Property-based tests of the application layers on top of RDP:
ordered multicast (agreement on total order) and the TIS information
base (read-your-writes after quiescence)."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import LatencySpec, WorldConfig
from repro.net.latency import ConstantLatency
from repro.servers.ordered_multicast import OrderedGroupServer, join_ordered_group
from repro.servers.tis_network import TisNetwork
from repro.world import World

_actions = st.lists(
    st.tuples(
        st.sampled_from(["mcast", "sleep", "wake", "migrate"]),
        st.integers(min_value=0, max_value=2),   # which member
        st.integers(min_value=0, max_value=3),   # target cell / payload
    ),
    min_size=4, max_size=18,
)


def _world(seed: int) -> World:
    return World(WorldConfig(
        seed=seed, n_cells=4, topology="ring",
        wired_latency=LatencySpec(kind="constant", mean=0.010),
        wireless_latency=LatencySpec(kind="constant", mean=0.005),
        trace=False,
    ))


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(actions=_actions, seed=st.integers(min_value=0, max_value=2))
def test_ordered_multicast_agreement(actions, seed):
    """All members deliver the same sequence (the server's history),
    gap-free and duplicate-free, regardless of sleep/migration timing."""
    world = _world(seed)
    server = world.add_server("og", OrderedGroupServer)
    sender = world.add_host("sender", world.cells[0])
    members = [world.add_host(f"m{i}", world.cells[(i + 1) % 4])
               for i in range(3)]
    memberships = [join_ordered_group(c, "og", "g") for c in members]
    world.run(until=1.0)

    payload_counter = [0]
    at = 1.0
    for action, member_index, arg in actions:
        at += 0.4
        host = members[member_index].host

        def step(action=action, host=host, arg=arg) -> None:
            if action == "mcast":
                payload_counter[0] += 1
                sender.request("og", {"op": "omcast", "group": "g",
                                      "data": payload_counter[0]})
            elif action == "sleep" and host.state.value == "active":
                host.deactivate()
            elif action == "wake" and host.state.value == "inactive":
                host.activate()
            elif action == "migrate" and host.state.value == "active":
                target = world.cells[arg]
                if host.current_cell != target:
                    host.migrate_to(target)
        world.sim.schedule_at(at, step)

    world.run(until=at + 5.0)
    # Wake everyone so redeliveries can finish, then settle.
    for client in members:
        if client.host.state.value == "inactive":
            client.host.activate()
    world.run(until=at + 40.0)

    expected = server.history.get("g", [])
    for membership in memberships:
        assert membership.delivered == expected
        assert membership.holdback_depth == 0


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    writes=st.lists(st.tuples(st.integers(0, 3), st.floats(0.0, 10.0)),
                    min_size=1, max_size=12),
    seed=st.integers(min_value=0, max_value=2),
)
def test_tis_reads_see_last_write(writes, seed):
    """After quiescence, a query for any region returns the last written
    level, regardless of which server the query enters through."""
    world = _world(seed)
    regions = [f"r{i}" for i in range(4)]
    tis = TisNetwork(
        world.sim, world.wired, world.directory,
        partitions={"tisA": regions[:2], "tisB": regions[2:]},
        overlay_edges=[("tisA", "tisB")],
        instruments=world.instruments,
        service_time=ConstantLatency(0.01),
    )
    client = world.add_host("m", world.cells[0])
    world.run(until=0.5)

    last: dict = {}
    for region_index, level in writes:
        region = regions[region_index]
        level = round(level, 3)
        p = client.request("tis.tisA", {"op": "update", "region": region,
                                        "level": level})
        world.run(until=world.sim.now + 3.0)
        assert p.done and p.result.get("ok"), p.result
        last[region] = level

    for entry in ("tis.tisA", "tis.tisB"):
        for region, level in last.items():
            q = client.request(entry, {"op": "query", "region": region})
            world.run(until=world.sim.now + 3.0)
            assert q.done
            assert q.result["level"] == level, (entry, region, q.result)
    world.run_until_idle()
