#!/usr/bin/env python3
"""Mobile e-mail over RDP — the paper's "electronic mail systems for
portable computers" (Section 1).

Two commuters exchange mail across a four-cell city on a bandwidth-
limited shared radio.  Everything difficult is handled by the substrate:

* Alice composes replies inside a radio blackout (QRPC outbox);
* Bob's inbox *pushes* arriving mail through his RDP proxy, chasing him
  across cells and naps;
* large attachments serialize on the 128 kbps cell radio, visible in the
  delivery latency.

Run:  python examples/mobile_mail.py
"""

from __future__ import annotations

from repro import World, WorldConfig
from repro.config import LatencySpec
from repro.hosts.qrpc import QueuedRpcClient
from repro.servers.mail import MailServer


def main() -> None:
    config = WorldConfig(
        seed=4,
        n_cells=4,
        topology="ring",
        wired_latency=LatencySpec(kind="constant", mean=0.010),
        wireless_latency=LatencySpec(kind="constant", mean=0.005),
        wireless_bandwidth_bps=128_000,
    )
    world = World(config)
    server = world.add_server("mail", MailServer)

    plain = world.add_host("alice", world.cells[0], join=False)
    alice = QueuedRpcClient(plain.host)
    alice.host.join(world.cells[0])
    bob = world.add_host("bob", world.cells[2])

    bob_inbox = bob.subscribe("mail", {"user": "bob"})
    alice_inbox = alice.subscribe("mail", {"user": "alice"})

    # Bob mails Alice an attachment, then starts commuting.
    world.sim.schedule(0.5, bob.request, "mail", {
        "op": "send", "to": "alice", "from": "bob",
        "subject": "quarterly report", "body": "Q" * 8000})
    world.sim.schedule(1.0, world.hosts["bob"].migrate_to, world.cells[3])
    world.sim.schedule(2.0, world.hosts["bob"].deactivate)

    # Alice reads it, rides into a tunnel, and replies from there.
    def alice_tunnel() -> None:
        alice.host.deactivate()
        alice.request("mail", {"op": "send", "to": "bob", "from": "alice",
                               "subject": "re: quarterly report",
                               "body": "numbers look fine"})
        alice.host.migrate_to(world.cells[1])

    world.sim.schedule(3.0, alice_tunnel)
    world.sim.schedule(5.0, alice.host.activate)          # out of the tunnel
    world.sim.schedule(8.0, world.hosts["bob"].activate)  # bob wakes up

    world.run(until=30.0)
    server.close_inbox("alice")
    server.close_inbox("bob")
    world.run_until_idle()

    print("alice received:")
    for note in alice_inbox.notifications:
        print(f"  [{note['mail_id']}] {note['from']}: {note['subject']} "
              f"({len(str(note['body']))} bytes)")
    print("bob received:")
    for note in bob_inbox.notifications:
        print(f"  [{note['mail_id']}] {note['from']}: {note['subject']}")
    print()
    print(f"qrpc outbox flushes : {world.metrics.count('qrpc_flushed')}")
    print(f"retransmissions     : {world.metrics.count('proxy_retransmissions')}"
          f"  (results that chased a commuter)")
    print(f"live proxies        : {world.live_proxy_count()}")


if __name__ == "__main__":
    main()
