#!/usr/bin/env python3
"""Disconnected operation: QRPC request queueing + ordered multicast.

The paper positions RDP as one half of a pair (Section 4): Rover-style
QRPC "guarantees reliable sending of requests, RDP guarantees reliable
result delivery."  This example exercises both halves together with the
ordered-multicast companion protocol:

* a field engineer queues traffic reports while riding through a tunnel
  (radio off); the outbox flushes automatically on reconnection — in a
  different cell — and every result comes back through RDP;
* meanwhile the dispatch channel (a sequenced multicast group) keeps
  feeding instructions: the engineer misses several while offline, and
  the hold-back layer replays them in exact order on wake-up.

Run:  python examples/disconnected_operation.py
"""

from __future__ import annotations

from repro import World, WorldConfig
from repro.config import LatencySpec
from repro.hosts.qrpc import QueuedRpcClient
from repro.net.latency import ConstantLatency
from repro.servers.echo import TaggingServer
from repro.servers.ordered_multicast import (
    OrderedGroupServer,
    join_ordered_group,
    leave_ordered_group,
)


def main() -> None:
    config = WorldConfig(
        seed=1,
        n_cells=4,
        topology="ring",
        wired_latency=LatencySpec(kind="constant", mean=0.010),
        wireless_latency=LatencySpec(kind="constant", mean=0.005),
    )
    world = World(config)
    world.add_server("reports", TaggingServer)
    world.add_server("dispatch", OrderedGroupServer)

    # The engineer uses a QRPC client: requests never fail, they queue.
    plain = world.add_host("engineer", world.cells[0], join=False)
    engineer = QueuedRpcClient(plain.host, retry_interval=5.0)
    engineer.host.join(world.cells[0])
    dispatcher = world.add_host("dispatcher", world.cells[2])

    membership = {}
    world.sim.schedule(0.1, lambda: membership.setdefault(
        "m", join_ordered_group(engineer, "dispatch", "ops")))

    queued = []

    def through_the_tunnel() -> None:
        host = engineer.host
        host.deactivate()                       # radio gone
        for km in (12, 13, 14):
            queued.append(engineer.request("reports",
                                           {"observation": f"jam at km {km}"}))
        host.migrate_to(world.cells[1])         # carried through the tunnel
        host.migrate_to(world.cells[2])

    world.sim.schedule(1.0, through_the_tunnel)

    # Dispatch keeps multicasting while the engineer is dark.
    for i, t in enumerate((1.5, 2.0, 2.5, 3.0)):
        world.sim.schedule(t, dispatcher.request, "dispatch",
                           {"op": "omcast", "group": "ops",
                            "data": f"instruction #{i + 1}"})

    world.sim.schedule(5.0, engineer.host.activate)   # out of the tunnel

    world.run(until=20.0)
    leave_ordered_group(engineer, "dispatch", membership["m"])
    world.run_until_idle()
    # One flush request per host retires any proxy kept alive by the
    # Section-3.4 del-pref race (the paper's "del-proxy = false" ending).
    flushes = [dispatcher.request("reports", {"observation": "shift over"}),
               engineer.request("reports", {"observation": "logging off"})]
    world.run_until_idle()
    assert all(p.done for p in flushes)

    host = engineer.host
    print(f"engineer resurfaced in {host.current_cell} "
          f"(entered the tunnel in {world.cells[0]})")
    print(f"queued while offline : {len(queued)} reports")
    print(f"delivered after wake : {sum(p.done for p in queued)} "
          f"(serials {[p.result['serial'] for p in queued if p.done]})")
    print(f"dispatch instructions, in order: {membership['m'].delivered}")
    print(f"holdback remaining   : {membership['m'].holdback_depth}")
    print(f"qrpc queued/flushed  : {world.metrics.count('qrpc_queued')}/"
          f"{world.metrics.count('qrpc_flushed')}")
    print(f"live proxies         : {world.live_proxy_count()}")


if __name__ == "__main__":
    main()
