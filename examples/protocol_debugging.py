#!/usr/bin/env python3
"""Debugging a hand-off race with the analysis toolbox.

Reconstructs the paper's trickiest moment — a result arriving exactly
while its recipient changes cells — and shows the three views the
`repro.analysis` package offers for understanding it:

* the per-entity **timeline** (who did what, when),
* the **message-sequence chart** (Figure-3 style arrows),
* the **latency decomposition** (where the time went).

Run:  python examples/protocol_debugging.py
"""

from __future__ import annotations

from repro import World, WorldConfig
from repro.analysis.latency import latency_report
from repro.analysis.sequence import extract_chart, render_chart
from repro.analysis.timeline import extract_timeline, lane_summary, render_timeline
from repro.config import LatencySpec
from repro.servers.echo import ManualServer


def main() -> None:
    world = World(WorldConfig(
        n_cells=3,
        wired_latency=LatencySpec(kind="constant", mean=0.010),
        wireless_latency=LatencySpec(kind="constant", mean=0.005),
    ))
    server = world.add_server("oracle", ManualServer)
    client = world.add_host("traveler", world.cells[0])
    host = world.hosts["traveler"]

    pending = {}
    world.sim.schedule(0.100, lambda: pending.setdefault(
        "q", client.request("oracle", "where is the jam?")))
    world.sim.schedule(0.500, host.migrate_to, world.cells[1])
    # Release the answer so its wireless delivery races the next hop:
    world.sim.schedule(1.000, server.release_next, "take the ring road")
    world.sim.schedule(1.022, host.migrate_to, world.cells[2])
    world.run_until_idle()

    print(render_timeline(extract_timeline(world.recorder),
                          title="what every entity did"))
    print()
    print(f"lane summary: {lane_summary(extract_timeline(world.recorder))}")
    print()
    chart = extract_chart(world.recorder, kinds={
        "result_forward", "wireless_result", "update_currentloc",
        "ack", "ack_forward"})
    print(render_chart(chart, title="the race, as message arrows"))
    print()
    print(latency_report(world).render())
    print()
    print(f"verdict: delivered={pending['q'].done}, "
          f"retransmissions={world.metrics.count('proxy_retransmissions')}, "
          f"duplicates at the app={world.hosts['traveler'].duplicate_deliveries}")


if __name__ == "__main__":
    main()
