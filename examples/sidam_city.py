#!/usr/bin/env python3
"""The SIDAM scenario: a city-wide traffic information service.

This is the paper's motivating application (Section 1): a 4x4-cell city
served by four interconnected Traffic Information Servers.  Citizens
random-walk through the city querying (mostly local) traffic conditions;
Traffic Engineering staff drive around feeding observations back; a
background process evolves the true congestion levels.

Everything rides on RDP: queries and updates are request/reply through
per-host proxies, and results chase migrating users reliably.

Run:  python examples/sidam_city.py
"""

from __future__ import annotations

from repro import World, WorldConfig
from repro.analysis.stats import summarize
from repro.config import LatencySpec
from repro.experiments.harness import drain
from repro.mobility.models import ExponentialResidence, RandomNeighborWalk
from repro.net.latency import ExponentialLatency
from repro.servers.tis_network import TisNetwork
from repro.sidam.city import CityModel
from repro.sidam.traffic import StaffReporter, SyntheticTraffic
from repro.sidam.workload import CitizenWorkload

N_CITIZENS = 10
N_STAFF = 2
DURATION = 300.0


def main() -> None:
    config = WorldConfig(
        seed=7,
        topology="grid",
        grid_width=4,
        grid_height=4,
        wired_latency=LatencySpec(kind="exponential", mean=0.012),
        wireless_latency=LatencySpec(kind="constant", mean=0.005),
        wireless_loss=0.01,
        trace=False,
    )
    world = World(config)
    city = CityModel(world.cell_map, n_servers=4)
    tis = TisNetwork(
        world.sim, world.wired, world.directory,
        partitions=city.partitions,
        overlay_edges=city.overlay_edges(),
        instruments=world.instruments,
        service_time=ExponentialLatency(scale=0.05, floor=0.01),
        cache_ttl=30.0,
    )

    traffic = SyntheticTraffic(world.sim, tis, world.rng.stream("traffic"),
                               period=10.0)
    traffic.start()

    walk = RandomNeighborWalk(world.cell_map)
    residence = ExponentialResidence(25.0)

    workloads = []
    for i in range(N_CITIZENS):
        name = f"citizen{i}"
        client = world.add_host(name, world.cells[i % len(world.cells)],
                                retry_interval=5.0)
        world.add_mobility(name, walk, residence)
        # Each citizen queries its local TIS entry point.
        entry = f"tis.{sorted(city.partitions)[i % 4]}"
        workload = CitizenWorkload(world.sim, client, city,
                                   world.rng.stream(f"wl.{name}"),
                                   service=entry, mean_interarrival=12.0)
        workload.start()
        workloads.append(workload)

    reporters = []
    for i in range(N_STAFF):
        name = f"staff{i}"
        client = world.add_host(name, world.cells[-(i + 1)],
                                retry_interval=5.0)
        world.add_mobility(name, walk, ExponentialResidence(15.0))
        reporter = StaffReporter(world.sim, client, city,
                                 world.rng.stream(f"staff.{name}"),
                                 service=f"tis.{sorted(city.partitions)[0]}",
                                 period=20.0)
        reporter.start()
        reporters.append(reporter)

    world.run(until=DURATION)
    for w in workloads:
        w.stop()
    for r in reporters:
        r.stop()
    traffic.stop()
    drain(world)

    queries = [p for w in workloads for p in w.stats.requests]
    reports = [p for c in (world.clients[f"staff{i}"] for i in range(N_STAFF))
               for p in c.requests.values()]
    print(f"city: 4x4 cells, {len(city.regions)} regions, 4 TIS servers")
    print(f"citizen queries : {len(queries)} issued, "
          f"{sum(p.done for p in queries)} answered")
    print(f"staff reports   : {len(reports)} sent, "
          f"{sum(p.done for p in reports)} confirmed")
    print(f"query latency   : {summarize([p.latency for p in queries if p.latency is not None])}")
    print(f"migrations      : {world.metrics.count('mh_migrations')}")
    print(f"hand-offs       : {world.metrics.count('handoffs_completed')}")
    print(f"retransmissions : {world.metrics.count('proxy_retransmissions')}")
    print(f"proxies created : {world.metrics.count('proxies_created')}, "
          f"deleted: {world.metrics.count('proxies_deleted')}, "
          f"live: {world.live_proxy_count()}")
    cache_hits = sum(s.cache_hits for s in tis.servers.values())
    remote = sum(s.remote_lookups for s in tis.servers.values())
    print(f"TIS: {cache_hits} cache hits, {remote} overlay lookups")


if __name__ == "__main__":
    main()
