#!/usr/bin/env python3
"""Dynamic proxy placement vs a Mobile-IP-style static home agent.

Reproduces the load-balancing argument of the paper (Sections 1, 4, 5):
a crowd of mobile hosts starts in one corner of a grid city and disperses
while issuing requests.  With a static home agent every reply funnels
through the corner MSS forever; with RDP's dynamic proxies the rendezvous
load follows the crowd.

Run:  python examples/load_balancing.py
"""

from __future__ import annotations

from repro.experiments.an5_load_balance import run_policy


def bar(value: float, scale: float, width: int = 40) -> str:
    filled = int(width * min(value / scale, 1.0))
    return "#" * filled


def main() -> None:
    results = {policy: run_policy(policy, n_hosts=20, grid=4,
                                  duration=240.0, seed=11)
               for policy in ("home", "current", "least_loaded")}

    for policy, result in results.items():
        print(f"policy = {policy}   (requests: {result.requests}, "
              f"Jain fairness: {result.fairness:.3f}, "
              f"max/mean: {result.imbalance:.2f})")
        peak = max(result.per_mss_load.values()) or 1
        for node in sorted(result.per_mss_load):
            load = result.per_mss_load[node]
            proxies = result.per_mss_proxies.get(node, 0)
            print(f"  {node:<8} {load:>7} msgs  {proxies:>4} proxies "
                  f"|{bar(load, peak)}")
        print()

    home, current = results["home"], results["current"]
    print(f"hottest-MSS share of all load: home={home.hottest_share:.1%} "
          f"vs dynamic={current.hottest_share:.1%}")
    print("=> the paper's claim: dynamic placement spreads rendezvous load")


if __name__ == "__main__":
    main()
