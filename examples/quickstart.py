#!/usr/bin/env python3
"""Quickstart: one mobile host, one server, one migration.

Builds a three-cell world, issues a slow request from cell0, migrates the
host twice while the server is working, and shows RDP delivering the
result in the destination cell — then prints the message-sequence chart,
exactly like Figure 3 of the paper.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import World, WorldConfig
from repro.analysis.sequence import extract_chart, render_chart
from repro.config import LatencySpec
from repro.net.latency import ConstantLatency
from repro.servers.echo import EchoServer


def main() -> None:
    config = WorldConfig(
        n_cells=3,
        wired_latency=LatencySpec(kind="constant", mean=0.010),
        wireless_latency=LatencySpec(kind="constant", mean=0.005),
    )
    world = World(config)
    world.add_server("oracle", EchoServer, service_time=ConstantLatency(1.0))

    client = world.add_host("wanderer", world.cells[0])
    host = world.hosts["wanderer"]

    pending = {}
    world.sim.schedule(0.1, lambda: pending.setdefault(
        "q", client.request("oracle", {"question": "traffic on highway 9?"})))
    world.sim.schedule(0.4, host.migrate_to, world.cells[1])
    world.sim.schedule(0.8, host.migrate_to, world.cells[2])

    world.run_until_idle()

    request = pending["q"]
    print(f"request {request.request_id}:")
    print(f"  issued in   : {world.cells[0]}")
    print(f"  answered in : {host.current_cell}")
    print(f"  result      : {request.result}")
    print(f"  latency     : {request.latency:.3f}s")
    print(f"  proxies live at the end: {world.live_proxy_count()}")
    print(f"  retransmissions: {world.metrics.count('proxy_retransmissions')}")
    print()

    chart = extract_chart(world.recorder, kinds={
        "request", "greet", "dereg", "deregack", "update_currentloc",
        "server_request", "server_result", "result_forward",
        "wireless_result", "ack", "ack_forward",
    })
    print(render_chart(chart, title="Message sequence (cf. paper Figure 3)"))


if __name__ == "__main__":
    main()
