#!/usr/bin/env python3
"""Reliability shoot-out: RDP vs I-TCP-style vs best-effort delivery.

Runs the AN1 workload — roaming, napping hosts on a lossy radio — over
the three delivery protocols and prints delivery ratios plus the cost
side of the ledger (retransmissions, hand-off bytes).

Run:  python examples/reliability_comparison.py
"""

from __future__ import annotations

from repro.experiments.an1_reliability import PROTOCOLS, run_reliability
from repro.experiments.an7_handoff_cost import run_protocol


def main() -> None:
    print("delivery reliability (8 hosts, ring of 6 cells, 5% radio loss,")
    print("exponential residence 15s, on/off cycles):\n")
    print(f"{'protocol':<10} {'requests':>8} {'delivered':>9} {'ratio':>7} "
          f"{'retransmissions':>16}")
    for protocol in PROTOCOLS:
        r = run_reliability(protocol, duration=300.0, seed=21)
        print(f"{r.protocol:<10} {r.requests:>8} {r.delivered:>9} "
              f"{r.delivery_ratio:>7.2%} {r.retransmissions:>16}")

    print("\nhand-off cost for the two reliable protocols")
    print("(4 hosts, 4KB results piling up across 8 hops each):\n")
    print(f"{'protocol':<10} {'handoffs':>8} {'bytes/handoff':>14} "
          f"{'residue ptrs':>13}")
    for protocol in ("rdp", "itcp"):
        r = run_protocol(protocol, seed=21)
        print(f"{r.protocol:<10} {r.handoffs:>8} {r.deregack_bytes_mean:>14.0f} "
              f"{r.forwarding_pointers:>13}")
    print("\n=> RDP matches I-TCP reliability at a fraction of the")
    print("   hand-off cost and with zero residue at old MSSs (paper §5).")


if __name__ == "__main__":
    main()
