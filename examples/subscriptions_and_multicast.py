#!/usr/bin/env python3
"""Subscriptions and group multicast over RDP.

The paper (Sections 1 and 3) lists four operations for the SIDAM system:
query, update, subscribe and multicast.  This example shows the last two
riding on RDP's reliable result delivery:

* a commuter *subscribes* to congestion changes on its home region with a
  threshold — notifications keep arriving even while the commuter roams
  and sleeps, because the open subscription pins its proxy;
* a car-pool *group* exchanges messages via the multicast service: every
  member holds a membership subscription and each mcast becomes one
  reliable notification per member.

Run:  python examples/subscriptions_and_multicast.py
"""

from __future__ import annotations

from repro import World, WorldConfig
from repro.config import LatencySpec
from repro.net.latency import ConstantLatency
from repro.servers.multicast import GroupServer
from repro.servers.tis_network import TisNetwork
from repro.sidam.city import CityModel


def main() -> None:
    config = WorldConfig(
        seed=3,
        n_cells=4,
        topology="ring",
        wired_latency=LatencySpec(kind="constant", mean=0.010),
        wireless_latency=LatencySpec(kind="constant", mean=0.005),
    )
    world = World(config)
    city = CityModel(world.cell_map, n_servers=2)
    tis = TisNetwork(world.sim, world.wired, world.directory,
                     partitions=city.partitions,
                     overlay_edges=city.overlay_edges(),
                     instruments=world.instruments,
                     service_time=ConstantLatency(0.02))
    world.add_server("carpool", GroupServer)

    commuter = world.add_host("commuter", world.cells[0])
    alice = world.add_host("alice", world.cells[1])
    bob = world.add_host("bob", world.cells[2])

    # --- subscription -----------------------------------------------------
    home_region = city.local_region(world.cells[0])
    sub = {}
    world.sim.schedule(0.1, lambda: sub.setdefault("s", commuter.subscribe(
        "tis.tis0", {"region": home_region, "threshold": 2.0})))

    # Congestion evolves; the commuter roams and even sleeps through one
    # update — the notification is redelivered on wake-up.
    world.sim.schedule(1.0, tis.apply_external_update, home_region, 5.0)
    world.sim.schedule(2.0, world.hosts["commuter"].migrate_to, world.cells[2])
    world.sim.schedule(3.0, tis.apply_external_update, home_region, 9.0)
    world.sim.schedule(4.0, world.hosts["commuter"].deactivate)
    world.sim.schedule(5.0, tis.apply_external_update, home_region, 1.0)
    world.sim.schedule(8.0, world.hosts["commuter"].activate)

    # --- multicast ----------------------------------------------------------
    memberships = {}
    def join_all() -> None:
        memberships["alice"] = alice.subscribe("carpool", {"group": "pool"})
        memberships["bob"] = bob.subscribe("carpool", {"group": "pool"})
    world.sim.schedule(0.2, join_all)
    sent = {}
    world.sim.schedule(6.0, lambda: sent.setdefault("m", alice.request(
        "carpool", {"op": "mcast", "group": "pool",
                    "data": "leaving at 6pm"})))

    world.run(until=15.0)
    # Close everything so the world drains clean.
    tis.owner_of(home_region).end_subscription(sub["s"].request_id, "bye")
    for name, membership in memberships.items():
        client = world.clients[name]
        client.request("carpool", {"op": "leave", "group": "pool",
                                   "member": str(membership.request_id)})
    world.run_until_idle()

    print(f"commuter subscription on {home_region}:")
    for note in sub["s"].notifications:
        print(f"  level -> {note['level']} (v{note['version']})")
    print(f"  delivered {len(sub['s'].notifications)} notifications "
          f"(3 updates, all >= threshold), ended: {not sub['s'].active}")
    print()
    print(f"carpool mcast: {sent['m'].result}")
    for name, membership in memberships.items():
        data = [n.get("data") for n in membership.notifications
                if isinstance(n, dict) and "data" in n]
        print(f"  {name} received: {data}")
    print()
    print(f"retransmissions (sleep/migration recovery): "
          f"{world.metrics.count('proxy_retransmissions')}")
    print(f"live proxies at the end: {world.live_proxy_count()}")


if __name__ == "__main__":
    main()
